package mpi

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"topobarrier/internal/fabric"
	"topobarrier/internal/topo"
)

// testFabric builds a quiet (noise-free) fabric: `nodes` nodes of one socket
// with `cores` cores, O=10µs/L=2µs within a socket, O=50µs/L=8µs across
// nodes, Oii=1µs.
func testFabric(t testing.TB, nodes, cores, p int) *fabric.Fabric {
	t.Helper()
	spec := topo.Spec{Name: "test", Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: cores}
	params := fabric.Params{
		Classes: map[topo.LinkClass]fabric.Link{
			topo.SameSocket: {Alpha: 10e-6, Beta: 1e-9, Lambda: 2e-6},
			topo.CrossNode:  {Alpha: 50e-6, Beta: 8e-9, Lambda: 8e-6},
		},
		SelfOverhead: 1e-6,
		NICOccupancy: 20e-6,
	}
	f, err := fabric.New(spec, topo.Block{}, p, params)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const usec = 1e-6

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestPingPongTiming(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 2, 2))
	elapsed, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, 0)
			st := c.Recv(1, 7)
			if st.Src != 1 || st.Tag != 7 {
				panic("bad status")
			}
		} else {
			c.Recv(0, 7)
			c.Send(0, 7, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Leg 1: receiver not yet posted when rank 0 issues → O+L = 12µs.
	// Leg 2 likewise (rank 0 posts its receive only after its send
	// completes) → 24µs total.
	approx(t, elapsed, 24*usec, 1e-12, "ping-pong elapsed")
}

func TestEq2ReadyReceiverUsesSelfOverhead(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 2, 2))
	elapsed, err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Recv(0, 0)
			return
		}
		c.Compute(5 * usec) // let rank 1 post its receive first
		c.Send(1, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ready receiver → Oii (1µs) + L (2µs) after the 5µs delay.
	approx(t, elapsed, 8*usec, 1e-12, "ready-receiver elapsed")
}

func TestBatchFollowsEq1(t *testing.T) {
	// Rank 0 sends one empty message to each of ranks 1..4 in one batch.
	// With ready receivers, message k completes at Oii + (k+1)·L, so the
	// batch costs Oii + 4·L = 9µs (the paper's Eq. 2 form of Eq. 1).
	w := NewWorld(testFabric(t, 1, 5, 5))
	elapsed, err := w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			c.Recv(0, 0)
			return
		}
		c.Compute(1 * usec)
		var reqs []*Request
		for dst := 1; dst < c.Size(); dst++ {
			reqs = append(reqs, c.Issend(dst, 0, 0))
		}
		c.Wait(reqs...)
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, elapsed, (1+1+4*2)*usec, 1e-12, "batch elapsed")
}

func TestBatchResetsAfterWait(t *testing.T) {
	// Two single-message sends separated by Wait must each pay the full
	// first-message cost, not accumulate batch latency.
	w := NewWorld(testFabric(t, 1, 2, 2))
	elapsed, err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Recv(0, 0)
			c.Recv(0, 1)
			return
		}
		c.Compute(1 * usec)
		c.Send(1, 0, 0) // Oii+L = 3µs (receiver posted)
		c.Send(1, 1, 0) // again 3µs
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, elapsed, (1+3+3)*usec, 1e-12, "sequential sends")
}

func TestMessageSizeAddsTransferTime(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 2, 2))
	elapsed, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, 1000)
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// O + beta·1000 + L = 10µs + 1µs + 2µs.
	approx(t, elapsed, 13*usec, 1e-12, "sized send")
}

func TestSynchronizedSendBlocksUntilMatched(t *testing.T) {
	var sendDone, recvPosted float64
	w := NewWorld(testFabric(t, 1, 2, 2))
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, 0)
			sendDone = c.Wtime()
		} else {
			c.Compute(100 * usec)
			recvPosted = c.Wtime()
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendDone < recvPosted {
		t.Fatalf("Issend completed at %g before receive was posted at %g", sendDone, recvPosted)
	}
}

func TestEagerIsendCompletesUnmatched(t *testing.T) {
	var sendDone float64
	w := NewWorld(testFabric(t, 1, 2, 2))
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			q := c.Isend(1, 0, 0)
			c.Wait(q)
			sendDone = c.Wtime()
		} else {
			c.Compute(100 * usec)
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendDone > 50*usec {
		t.Fatalf("eager send waited for the receiver (done at %g)", sendDone)
	}
}

func TestWildcardReceive(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 3, 3))
	_, err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			st := c.Recv(AnySource, AnyTag)
			if st.Src != 1 && st.Src != 2 {
				panic("bad wildcard source")
			}
			st2 := c.Recv(AnySource, AnyTag)
			if st2.Src == st.Src {
				panic("same source matched twice")
			}
		default:
			c.Send(0, c.Rank()*10, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectiveMatching(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 2, 2))
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			// Send tag 5 then tag 6.
			a := c.Issend(1, 5, 0)
			b := c.Issend(1, 6, 0)
			c.Wait(a, b)
		} else {
			// Receive them in reverse tag order.
			st := c.Recv(0, 6)
			if st.Tag != 6 {
				panic("tag 6 recv matched wrong message")
			}
			st = c.Recv(0, 5)
			if st.Tag != 5 {
				panic("tag 5 recv matched wrong message")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameEnvelope(t *testing.T) {
	// Two same-tag messages must match posted receives in arrival order;
	// we verify by size bookkeeping through completion times.
	w := NewWorld(testFabric(t, 1, 2, 2))
	var first, second float64
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			a := c.Issend(1, 0, 0)
			b := c.Issend(1, 0, 0)
			c.Wait(a, b)
		} else {
			q1 := c.Irecv(0, 0)
			q2 := c.Irecv(0, 0)
			c.Wait(q1, q2)
			first, second = q1.CompletedAt(), q2.CompletedAt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first > second {
		t.Fatalf("receives completed out of order: %g then %g", first, second)
	}
}

func TestDeadlockDetection(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 2, 2))
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 0) // never sent
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "[0]") {
		t.Fatalf("deadlock error %q does not identify rank 0", err)
	}
}

func TestRankPanicIsReported(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 3, 3))
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
		if c.Rank() == 0 {
			c.Recv(2, 0) // would deadlock, but the panic must win
		}
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want rank 2 panic", err)
	}
}

func TestMisusePanics(t *testing.T) {
	cases := []struct {
		name string
		body func(c *Comm)
	}{
		{"self-send", func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(0, 0, 0)
			}
		}},
		{"bad-peer", func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(99, 0, 0)
			}
		}},
		{"negative-size", func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 0, -1)
			}
		}},
		{"negative-compute", func(c *Comm) {
			if c.Rank() == 0 {
				c.Compute(-1)
			}
		}},
		{"foreign-wait", func(c *Comm) {
			if c.Rank() == 0 {
				q := c.Irecv(1, 0)
				_ = q
				c.Send(1, 0, 0)
			} else {
				q := c.Irecv(0, 0)
				q.owner = 0 // simulate waiting on someone else's request
				c.Wait(q)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorld(testFabric(t, 1, 2, 2))
			_, err := w.Run(tc.body)
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("err = %v, want panic report", err)
			}
		})
	}
}

func TestComputeAdvancesOnlyLocalTime(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 2, 2))
	var t0, t1 float64
	elapsed, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			t0 = c.Wtime()
			c.Compute(1.5)
			t1 = c.Wtime()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if t0 != 0 || t1 != 1.5 || elapsed != 1.5 {
		t.Fatalf("compute times: t0=%g t1=%g elapsed=%g", t0, t1, elapsed)
	}
	// Compute(0) is a no-op.
	if _, err := w.Run(func(c *Comm) { c.Compute(0) }); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() float64 {
		f, err := fabric.QuadClusterFabric(topo.RoundRobin{}, 24, 1234)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorld(f)
		elapsed, err := w.Run(func(c *Comm) {
			// All-to-root then root-to-all, twice.
			for iter := 0; iter < 2; iter++ {
				if c.Rank() == 0 {
					for src := 1; src < c.Size(); src++ {
						c.Recv(AnySource, iter)
					}
					var reqs []*Request
					for dst := 1; dst < c.Size(); dst++ {
						reqs = append(reqs, c.Issend(dst, 100+iter, 0))
					}
					c.Wait(reqs...)
				} else {
					c.Send(0, iter, 0)
					c.Recv(0, 100+iter)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical seeds produced %g vs %g", a, b)
	}
	if a <= 0 {
		t.Fatalf("elapsed = %g", a)
	}
}

func TestCongestionSerialisesNIC(t *testing.T) {
	body := func(c *Comm) {
		// Ranks 0 and 1 (node 0) each message ranks 2 and 3 (node 1).
		if c.Rank() < 2 {
			c.Send(c.Rank()+2, 0, 0)
		} else {
			c.Recv(c.Rank()-2, 0)
		}
	}
	free := NewWorld(testFabric(t, 2, 2, 4))
	tFree, err := free.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	congested := NewWorld(testFabric(t, 2, 2, 4), WithCongestion())
	tCong, err := congested.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	if tCong <= tFree {
		t.Fatalf("congestion did not slow the exchange: %g vs %g", tCong, tFree)
	}
}

func TestMaxEventsBound(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 2, 2), WithMaxEvents(3))
	_, err := w.Run(func(c *Comm) {
		for i := 0; i < 100; i++ {
			if c.Rank() == 0 {
				c.Send(1, i, 0)
			} else {
				c.Recv(0, i)
			}
		}
	})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v, want event-bound error", err)
	}
}

func TestTracerSeesDeliveries(t *testing.T) {
	var events []TraceEvent
	w := NewWorld(testFabric(t, 1, 2, 2), WithTracer(func(e TraceEvent) { events = append(events, e) }))
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, 64)
		} else {
			c.Recv(0, 9)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("traced %d events, want 1", len(events))
	}
	e := events[0]
	if e.Src != 0 || e.Dst != 1 || e.Tag != 9 || e.Bytes != 64 {
		t.Fatalf("trace event = %+v", e)
	}
	if e.Arrived <= e.Sent {
		t.Fatalf("trace times not ordered: %+v", e)
	}
}

func TestNoopInitiateAdvancesTime(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 2, 2))
	elapsed, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.NoopInitiate()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, elapsed, 5*usec, 1e-12, "noop initiations")
}

func TestManySequentialRunsDoNotLeak(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 4, 4))
	var count int64
	for i := 0; i < 50; i++ {
		_, err := w.Run(func(c *Comm) {
			atomic.AddInt64(&count, 1)
			if c.Rank() > 0 {
				c.Send(0, 0, 0)
			} else {
				for j := 1; j < c.Size(); j++ {
					c.Recv(AnySource, 0)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if count != 200 {
		t.Fatalf("bodies ran %d times, want 200", count)
	}
}

func TestWorldAccessors(t *testing.T) {
	f := testFabric(t, 1, 3, 3)
	w := NewWorld(f)
	if w.Size() != 3 || w.Fabric() != f {
		t.Fatalf("accessors wrong")
	}
	_, err := w.Run(func(c *Comm) {
		if c.Size() != 3 {
			panic("Comm.Size wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(testFabric(b, 1, 2, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 0, 0)
				c.Recv(1, 0)
			} else {
				c.Recv(0, 0)
				c.Send(0, 0, 0)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFanIn32(b *testing.B) {
	f, err := fabric.QuadClusterFabric(topo.Block{}, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := NewWorld(f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				for j := 1; j < c.Size(); j++ {
					c.Recv(AnySource, 0)
				}
			} else {
				c.Send(0, 0, 0)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestTestAndIprobe(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 2, 2))
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			if !c.Test(nil) {
				panic("nil request not done")
			}
			q := c.Issend(1, 3, 0)
			if c.Test(q) {
				panic("unmatched sync send reports done")
			}
			c.Wait(q)
			if !c.Test(q) {
				panic("completed request reports pending")
			}
			return
		}
		// Rank 1: let the message arrive unexpected, probe it, then receive.
		if c.Iprobe(0, 3) {
			panic("probe true before any arrival")
		}
		c.Compute(100 * usec) // message lands while we are parked
		if !c.Iprobe(0, 3) {
			panic("probe missed the queued message")
		}
		if !c.Iprobe(AnySource, AnyTag) {
			panic("wildcard probe missed the queued message")
		}
		if c.Iprobe(0, 99) {
			panic("probe matched the wrong tag")
		}
		c.Recv(0, 3)
		if c.Iprobe(0, 3) {
			panic("probe still true after receive")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestForeignRequestPanics(t *testing.T) {
	w := NewWorld(testFabric(t, 1, 2, 2))
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			q := c.Issend(1, 0, 0)
			q.owner = 1
			c.Test(q)
		} else {
			c.Recv(0, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("foreign Test accepted: %v", err)
	}
}
