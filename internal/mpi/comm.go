package mpi

import "fmt"

// Comm is a rank's handle to the job, valid only inside the body passed to
// World.Run and only on that rank's goroutine.
type Comm struct {
	r *run
	p *proc
}

// Rank returns the calling rank.
func (c *Comm) Rank() int { return c.p.rank }

// Size returns the number of ranks in the job.
func (c *Comm) Size() int { return len(c.r.procs) }

// Wtime returns the current virtual time in seconds.
func (c *Comm) Wtime() float64 { return c.r.q.Now() }

// reqKind distinguishes send and receive requests.
type reqKind int

const (
	sendReq reqKind = iota
	recvReq
)

// Request is a pending nonblocking operation.
type Request struct {
	kind  reqKind
	owner int
	peer  int // destination, or source (possibly AnySource)
	tag   int
	bytes int
	sync  bool // synchronized send (Issend)

	done        bool
	completedAt float64

	// Matched source and tag, filled for completed receives.
	Src, Tag int
}

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.done }

// CompletedAt returns the virtual completion time; valid once Done.
func (q *Request) CompletedAt() float64 { return q.completedAt }

func (c *Comm) checkPeer(peer int, wild bool) {
	if wild && peer == AnySource {
		return
	}
	if peer < 0 || peer >= c.Size() {
		panic(fmt.Sprintf("mpi: rank %d addressed invalid peer %d (size %d)", c.p.rank, peer, c.Size()))
	}
}

// Issend posts a synchronized nonblocking send of bytes payload to dst: the
// returned request completes only once the receiver has matched the message.
// This is the operation the paper's barrier executor issues for every signal.
func (c *Comm) Issend(dst, tag, bytes int) *Request {
	return c.send(dst, tag, bytes, true)
}

// Isend posts an eager nonblocking send; the request completes when the
// message arrives at the destination, matched or not.
func (c *Comm) Isend(dst, tag, bytes int) *Request {
	return c.send(dst, tag, bytes, false)
}

func (c *Comm) send(dst, tag, bytes int, sync bool) *Request {
	c.checkPeer(dst, false)
	if dst == c.p.rank {
		panic(fmt.Sprintf("mpi: rank %d sending to itself", dst))
	}
	if bytes < 0 {
		panic(fmt.Sprintf("mpi: negative message size %d", bytes))
	}
	r, p := c.r, c.p
	fab := r.world.fab
	now := r.q.Now()

	req := &Request{kind: sendReq, owner: p.rank, peer: dst, tag: tag, bytes: bytes, sync: sync}

	// Eq. 2: when the receiver is already waiting, the per-message overhead
	// is the software initiation cost Oii rather than the full targeting
	// overhead Oij.
	var base float64
	if r.hasPostedMatch(dst, p.rank, tag) {
		base = fab.SelfOverhead(p.rank)
	} else {
		base = fab.SendOverhead(p.rank, dst, bytes)
	}
	p.batchCount++
	p.batchLat += fab.BatchMarginal(p.rank, dst)
	arrival := now + base + p.batchLat

	// Optional congestion: cross-node messages serialise through the source
	// node's NIC.
	if r.world.congestion {
		if occ := fab.NICOccupancy(p.rank, dst, bytes); occ > 0 {
			node := fab.NodeOf(p.rank)
			depart := max64(now, r.nicFree[node])
			r.nicFree[node] = depart + occ
			arrival = max64(arrival, depart+occ+base)
		}
	}

	m := &inMsg{src: p.rank, tag: tag, bytes: bytes, arrival: arrival, sreq: req}
	sentAt := now
	r.q.Schedule(arrival, func() { r.deliver(dst, m, sentAt) })
	return req
}

// Irecv posts a nonblocking receive matching the given source and tag
// (AnySource / AnyTag act as wildcards). On completion the request's Src and
// Tag fields hold the matched envelope.
func (c *Comm) Irecv(src, tag int) *Request {
	c.checkPeer(src, true)
	r, p := c.r, c.p
	req := &Request{kind: recvReq, owner: p.rank, peer: src, tag: tag}

	// Check messages that already arrived unmatched.
	for i, m := range p.unexpected {
		if envelopeMatches(req, m.src, m.tag) {
			p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
			now := r.q.Now()
			req.complete(now, m.src, m.tag)
			if m.sreq != nil && !m.sreq.done {
				// The synchronized sender learns of the match now; complete
				// (and possibly wake) it from scheduler context.
				sreq := m.sreq
				r.q.Schedule(now, func() { r.completeAndWake(sreq, now, -1, -1) })
			}
			return req
		}
	}
	p.posted = append(p.posted, req)
	return req
}

// Wait blocks until every given request has completed. Nil requests are
// ignored.
func (c *Comm) Wait(reqs ...*Request) {
	live := reqs[:0:0]
	for _, q := range reqs {
		if q == nil {
			continue
		}
		if q.owner != c.p.rank {
			panic(fmt.Sprintf("mpi: rank %d waiting on rank %d's request", c.p.rank, q.owner))
		}
		live = append(live, q)
	}
	for !allDone(live) {
		c.p.waiting = live
		c.p.park(c.r)
	}
	c.p.waiting = nil
	// A completed wait ends the current simultaneous send batch even when no
	// blocking was needed.
	c.p.batchCount = 0
	c.p.batchLat = 0
}

// Send is a blocking synchronized send (Issend + Wait).
func (c *Comm) Send(dst, tag, bytes int) {
	c.Wait(c.Issend(dst, tag, bytes))
}

// Status describes a completed receive.
type Status struct {
	Src, Tag int
}

// Recv is a blocking receive (Irecv + Wait).
func (c *Comm) Recv(src, tag int) Status {
	q := c.Irecv(src, tag)
	c.Wait(q)
	return Status{Src: q.Src, Tag: q.Tag}
}

// Compute advances the calling rank's local time by seconds without
// communicating; it models local work and the delay injection of the paper's
// synchronization validation (§VI).
func (c *Comm) Compute(seconds float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("mpi: Compute(%g)", seconds))
	}
	if seconds == 0 {
		return
	}
	p, r := c.p, c.r
	until := r.q.Now() + seconds
	p.sleeping = true
	r.q.Schedule(until, func() {
		p.sleeping = false
		r.wake(p)
	})
	for p.sleeping {
		p.park(r)
	}
}

// NoopInitiate models initiating a communication request that ultimately
// causes no transmission; its cost is the paper's Oii parameter. The probe
// package measures it the way the paper does (§IV.A).
func (c *Comm) NoopInitiate() {
	c.Compute(c.r.world.fab.SelfOverhead(c.p.rank))
}

func allDone(reqs []*Request) bool {
	for _, q := range reqs {
		if !q.done {
			return false
		}
	}
	return true
}

func envelopeMatches(req *Request, src, tag int) bool {
	return (req.peer == AnySource || req.peer == src) &&
		(req.tag == AnyTag || req.tag == tag)
}

func (q *Request) complete(t float64, src, tag int) {
	q.done = true
	q.completedAt = t
	if q.kind == recvReq {
		q.Src, q.Tag = src, tag
	}
}

// hasPostedMatch reports whether dst currently has a receive posted that a
// message (src, tag) would match.
func (r *run) hasPostedMatch(dst, src, tag int) bool {
	for _, q := range r.procs[dst].posted {
		if envelopeMatches(q, src, tag) {
			return true
		}
	}
	return false
}

// deliver runs at a message's arrival time (scheduler context): match it
// against posted receives or queue it as unexpected.
func (r *run) deliver(dst int, m *inMsg, sentAt float64) {
	now := r.q.Now()
	if fn := r.world.tracer; fn != nil {
		fn(TraceEvent{Src: m.src, Dst: dst, Tag: m.tag, Bytes: m.bytes, Sent: sentAt, Arrived: now})
	}
	dp := r.procs[dst]
	for i, q := range dp.posted {
		if envelopeMatches(q, m.src, m.tag) {
			dp.posted = append(dp.posted[:i], dp.posted[i+1:]...)
			r.completeAndWake(q, now, m.src, m.tag)
			r.completeAndWake(m.sreq, now, -1, -1)
			return
		}
	}
	dp.unexpected = append(dp.unexpected, m)
	if !m.sreq.sync {
		// Eager sends complete on arrival even when unmatched.
		r.completeAndWake(m.sreq, now, -1, -1)
		m.sreq = nil
	}
}

// completeAndWake completes a request and wakes its owner if the owner is
// parked waiting on a now-fully-complete set. Scheduler context only.
func (r *run) completeAndWake(q *Request, t float64, src, tag int) {
	if q.done {
		return
	}
	q.complete(t, src, tag)
	p := r.procs[q.owner]
	if p.waiting != nil && allDone(p.waiting) {
		p.waiting = nil
		r.wake(p)
	}
}

// Test reports whether the request has completed, without blocking. Unlike
// Wait it never parks the caller, so it supports polling-style algorithms;
// note that in virtual time a request can only progress while the caller is
// parked, so a pure busy-poll loop without intervening Compute or Wait calls
// will spin forever.
func (c *Comm) Test(q *Request) bool {
	if q == nil {
		return true
	}
	if q.owner != c.p.rank {
		panic(fmt.Sprintf("mpi: rank %d testing rank %d's request", c.p.rank, q.owner))
	}
	return q.done
}

// Iprobe reports whether a message matching (src, tag) has arrived but not
// yet been received; wildcards apply as in Irecv. It does not consume the
// message.
func (c *Comm) Iprobe(src, tag int) bool {
	c.checkPeer(src, true)
	probe := &Request{kind: recvReq, owner: c.p.rank, peer: src, tag: tag}
	for _, m := range c.p.unexpected {
		if envelopeMatches(probe, m.src, m.tag) {
			return true
		}
	}
	return false
}
