package core

import (
	"strings"
	"testing"

	"topobarrier/internal/baseline"
	"topobarrier/internal/codegen"
	"topobarrier/internal/fabric"
	"topobarrier/internal/mpi"
	"topobarrier/internal/predict"
	"topobarrier/internal/probe"
	"topobarrier/internal/profile"
	"topobarrier/internal/run"
	"topobarrier/internal/sched"
	"topobarrier/internal/sss"
	"topobarrier/internal/telemetry"
	"topobarrier/internal/topo"
)

func quadWorld(t testing.TB, p int, seed uint64) *mpi.World {
	t.Helper()
	f, err := fabric.QuadClusterFabric(topo.RoundRobin{}, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return mpi.NewWorld(f)
}

func TestTuneProducesValidSpecialisedBarrier(t *testing.T) {
	w := quadWorld(t, 24, 1)
	tuned, err := Tune(w.Fabric().TrueProfile(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !tuned.Schedule().IsBarrier() {
		t.Fatalf("tuned schedule not a barrier")
	}
	if tuned.PredictedCost() <= 0 {
		t.Fatalf("predicted cost %g", tuned.PredictedCost())
	}
	if tuned.Tree == nil || tuned.Tree.IsLeaf() {
		t.Fatalf("no hierarchy discovered")
	}
	if err := run.Validate(w, tuned.Func(), 0.5, []int{0, 7, 23}); err != nil {
		t.Fatal(err)
	}
}

// TestTuneRefinementNeverRegresses: with Refine set, Tune follows the greedy
// composition with a local-search pass. The refined result must still be a
// barrier, clear barriervet, price no worse than the plain composition, run
// correctly, and be deterministic regardless of the worker count.
func TestTuneRefinementNeverRegresses(t *testing.T) {
	w := quadWorld(t, 24, 1)
	pf := w.Fabric().TrueProfile()
	plain, err := Tune(pf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Tune(pf, Options{Refine: 4000, RefineSeed: 7, RefineWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !refined.Schedule().IsBarrier() {
		t.Fatalf("refined schedule not a barrier")
	}
	if err := refined.Report.Err(); err != nil {
		t.Fatalf("refined schedule carries error findings: %v", err)
	}
	if refined.PredictedCost() > plain.PredictedCost() {
		t.Fatalf("refinement regressed: %g > %g", refined.PredictedCost(), plain.PredictedCost())
	}
	if err := run.Validate(w, refined.Func(), 0.5, []int{0, 7, 23}); err != nil {
		t.Fatal(err)
	}
	again, err := Tune(pf, Options{Refine: 4000, RefineSeed: 7, RefineWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Schedule().Equal(refined.Schedule()) {
		t.Fatalf("refinement depends on worker count")
	}
}

// TestTuneCarriesVetReport: every Tuned barrier carries its barriervet
// report, the report agrees the schedule is a barrier, and it is free of
// Error-severity findings (which would have aborted Tune).
func TestTuneCarriesVetReport(t *testing.T) {
	tuned, err := Tune(quadWorld(t, 24, 1).Fabric().TrueProfile(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Report == nil {
		t.Fatal("Tuned.Report is nil")
	}
	if !tuned.Report.Barrier {
		t.Fatalf("report disputes barrier verdict:\n%s", tuned.Report)
	}
	if err := tuned.Report.Err(); err != nil {
		t.Fatalf("tuned schedule carries error findings: %v", err)
	}
}

func TestTunePredictsNoWorseThanPureComponents(t *testing.T) {
	pf := quadWorld(t, 40, 2).Fabric().TrueProfile()
	tuned, err := Tune(pf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pd := predict.New(pf)
	for _, pure := range []*sched.Schedule{sched.Linear(40), sched.Dissemination(40), sched.Tree(40)} {
		if tuned.PredictedCost() > pd.Cost(pure) {
			t.Fatalf("hybrid predicted %g, worse than %s %g", tuned.PredictedCost(), pure.Name, pd.Cost(pure))
		}
	}
}

func TestTunedBeatsOrMatchesMPIBaselineMeasured(t *testing.T) {
	// The headline claim (Figure 11): generated barrier performance is
	// similar to the MPI (tree) barrier at worst, significantly better in
	// most cases. Allow 10% slack for noise.
	for _, p := range []int{16, 24, 40} {
		w := quadWorld(t, p, 3)
		tuned, err := Tune(w.Fabric().TrueProfile(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		hybrid, err := run.Measure(quadWorld(t, p, 10), tuned.Func(), 3, 10)
		if err != nil {
			t.Fatal(err)
		}
		mpiTree, err := run.Measure(quadWorld(t, p, 10), baseline.Tree, 3, 10)
		if err != nil {
			t.Fatal(err)
		}
		if hybrid.Mean > 1.1*mpiTree.Mean {
			t.Fatalf("p=%d: hybrid %.1fµs worse than MPI tree %.1fµs",
				p, hybrid.Mean*1e6, mpiTree.Mean*1e6)
		}
	}
}

func TestProfileAndTuneEndToEnd(t *testing.T) {
	w := quadWorld(t, 16, 4)
	cfg := probe.Default()
	cfg.Replicate = true
	tuned, err := ProfileAndTune(w, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Profile.P != 16 {
		t.Fatalf("profile P = %d", tuned.Profile.P)
	}
	if err := run.Validate(w, tuned.Func(), 0.5, []int{0, 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateSourceFromTuned(t *testing.T) {
	tuned, err := Tune(quadWorld(t, 12, 5).Fabric().TrueProfile(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := tuned.GenerateSource(codegen.Options{Package: "main", FuncName: "TunedBarrier"})
	if err != nil {
		t.Fatal(err)
	}
	if err := codegen.Check(src); err != nil {
		t.Fatalf("generated source invalid: %v", err)
	}
	if !strings.Contains(string(src), "func TunedBarrier") {
		t.Fatalf("function missing:\n%s", src)
	}
}

func TestTuneRejectsInvalidProfile(t *testing.T) {
	bad := profile.New("bad", 4)
	bad.O.Set(0, 1, -1)
	if _, err := Tune(bad, Options{}); err == nil {
		t.Fatalf("invalid profile accepted")
	}
}

func TestTuneHonoursOptions(t *testing.T) {
	pf := quadWorld(t, 24, 6).Fabric().TrueProfile()
	flat, err := Tune(pf, Options{Clustering: sss.Options{MaxDepth: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Tree.Depth() != 2 {
		t.Fatalf("MaxDepth ignored: depth %d", flat.Tree.Depth())
	}
	ext, err := Tune(pf, Options{Builders: sched.ExtendedBuilders()})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Schedule().IsBarrier() {
		t.Fatalf("extended tuning broken")
	}
	pol, err := Tune(pf, Options{Policy: predict.AlwaysEq1})
	if err != nil {
		t.Fatal(err)
	}
	if pol.PredictedCost() < flat.PredictedCost() {
		// AlwaysEq1 must not predict cheaper than the default policy for the
		// same shape of schedule; it may pick a different hybrid though, so
		// only sanity-check positivity.
		t.Logf("policy changed hybrid shape: %g vs %g", pol.PredictedCost(), flat.PredictedCost())
	}
}

func BenchmarkTune64(b *testing.B) {
	pf := quadWorld(b, 64, 1).Fabric().TrueProfile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Tune(pf, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTuneOnAsymmetricProfile(t *testing.T) {
	// §IV.A: the cost matrices extend trivially to asymmetric links. Probe a
	// direction-skewed fabric with the directed protocol and verify the
	// tuned barrier is correct and competitive there.
	params := fabric.GigEParams(6)
	params.DirectionSkew = 0.6
	f, err := fabric.New(topo.QuadCluster(), topo.RoundRobin{}, 24, params)
	if err != nil {
		t.Fatal(err)
	}
	w := mpi.NewWorld(f)
	cfg := probe.Default()
	cfg.Replicate = true
	pf, err := probe.MeasureDirected(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Tune(pf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Validate(w, tuned.Func(), 0.5, []int{0, 12, 23}); err != nil {
		t.Fatal(err)
	}
	hybrid, err := run.Measure(w, tuned.Func(), 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	mpiTree, err := run.Measure(w, baseline.Tree, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.Mean > 1.1*mpiTree.Mean {
		t.Fatalf("asymmetric hybrid %.1fµs worse than MPI tree %.1fµs", hybrid.Mean*1e6, mpiTree.Mean*1e6)
	}
}

func TestLowLatencyInterconnectNarrowsTheGap(t *testing.T) {
	// §VI: the hybrid's advantage stems from the inter-/intra-node latency
	// gap. On an RDMA-class fabric (IBParams) the gap is ~5x instead of
	// ~70x, so the tuned barrier's speedup over the MPI tree must shrink
	// relative to the GigE cluster — while remaining correct and no slower.
	const p = 40
	speedup := func(params fabric.Params) float64 {
		f, err := fabric.New(topo.QuadCluster(), topo.RoundRobin{}, p, params)
		if err != nil {
			t.Fatal(err)
		}
		w := mpi.NewWorld(f)
		tuned, err := Tune(f.TrueProfile(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Validate(w, tuned.Func(), 0.25, []int{0, p - 1}); err != nil {
			t.Fatal(err)
		}
		hybrid, err := run.Measure(w, tuned.Func(), 3, 12)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := run.Measure(w, baseline.Tree, 3, 12)
		if err != nil {
			t.Fatal(err)
		}
		return tree.Mean / hybrid.Mean
	}
	gige := speedup(fabric.GigEParams(4))
	ib := speedup(fabric.IBParams(4))
	if gige <= ib {
		t.Fatalf("locality gap effect missing: GigE speedup %.2f vs IB %.2f", gige, ib)
	}
	if ib < 0.9 {
		t.Fatalf("hybrid slower than tree on IB: %.2f", ib)
	}
}

// TestTunePhaseSpans: with a tracer attached, the pipeline records one span
// per phase (profile/compose/vet/plan, plus refine when enabled) and the
// predicted-cost gauge lands in the registry; without one, Tune behaves
// identically.
func TestTunePhaseSpans(t *testing.T) {
	w := quadWorld(t, 16, 1)
	pf := w.Fabric().TrueProfile()
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	tuned, err := Tune(pf, Options{Refine: 200, Tracer: tr, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, e := range tr.Events() {
		phases[e.Name]++
	}
	for _, want := range []string{"tune.compose", "tune.vet", "tune.refine", "tune.plan"} {
		if phases[want] == 0 {
			t.Fatalf("missing phase span %q; got %v", want, phases)
		}
	}
	if got := reg.Gauge("tune_predicted_cost_seconds").Value(); got != tuned.PredictedCost() {
		t.Fatalf("predicted-cost gauge %g, want %g", got, tuned.PredictedCost())
	}
	if reg.Counter("search_candidates_total").Value() == 0 {
		t.Fatal("refinement search left no telemetry despite registry")
	}

	// ProfileAndTune adds the probing phase.
	tr2 := telemetry.NewTracer()
	if _, err := ProfileAndTune(quadWorld(t, 16, 2), probe.Default(), Options{Tracer: tr2}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range tr2.Events() {
		if e.Name == "tune.profile" {
			found = true
		}
	}
	if !found {
		t.Fatal("ProfileAndTune recorded no tune.profile span")
	}
}
