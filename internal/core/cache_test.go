package core

import (
	"encoding/json"
	"testing"

	"topobarrier/internal/probe"
	"topobarrier/internal/profile"
	"topobarrier/internal/telemetry"
)

// TestProfileAndTuneUsesCache checks the warm-profile path end to end: the
// first call measures and populates the cache, the second tunes from the
// cached profile (bit-identical, no re-measurement), and a different salt
// keys a separate slot.
func TestProfileAndTuneUsesCache(t *testing.T) {
	w := quadWorld(t, 16, 2)
	cfg := probe.Default()
	reg := telemetry.NewRegistry()
	cache := &profile.Cache{Dir: t.TempDir(), Reg: reg}
	opts := Options{ProfileCache: cache, CacheSalt: "seed=2"}

	t1, err := ProfileAndTune(w, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("probe_cache_misses_total").Value(); v != 1 {
		t.Fatalf("first run: misses = %d, want 1", v)
	}
	t2, err := ProfileAndTune(w, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("probe_cache_hits_total").Value(); v != 1 {
		t.Fatalf("second run: hits = %d, want 1", v)
	}
	b1, _ := json.Marshal(t1.Profile)
	b2, _ := json.Marshal(t2.Profile)
	if string(b1) != string(b2) {
		t.Fatal("cache hit tuned from a different profile than the one measured")
	}
	if t2.PredictedCost() != t1.PredictedCost() {
		t.Fatalf("predicted cost drifted across the cache: %g vs %g", t1.PredictedCost(), t2.PredictedCost())
	}

	// A different salt must not reuse the slot.
	salted := opts
	salted.CacheSalt = "seed=3"
	if fp := ProfileFingerprint(w, cfg, salted.CacheSalt); fp == ProfileFingerprint(w, cfg, opts.CacheSalt) {
		t.Fatal("salt does not discriminate fingerprints")
	}
	if _, err := ProfileAndTune(w, cfg, salted); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("probe_cache_misses_total").Value(); v != 2 {
		t.Fatalf("salted run: misses = %d, want 2", v)
	}
}
