package core

import (
	"testing"
	"testing/quick"

	"topobarrier/internal/fabric"
	"topobarrier/internal/mpi"
	"topobarrier/internal/run"
	"topobarrier/internal/sched"
	"topobarrier/internal/stats"
	"topobarrier/internal/topo"
)

// TestQuickTuneOnRandomMachines is the pipeline-wide correctness property:
// for arbitrary machine shapes, placements, cost magnitudes and job sizes,
// the tuned schedule must verify under Eq. 3 AND synchronise on the runtime
// under delay injection.
func TestQuickTuneOnRandomMachines(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		spec := topo.Spec{
			Name:           "random",
			Nodes:          rng.Intn(5) + 1,
			SocketsPerNode: rng.Intn(2) + 1,
			CoresPerSocket: rng.Intn(6) + 1,
		}
		if spec.CoresPerSocket >= 2 && rng.Intn(2) == 0 {
			spec.CacheGroup = 2
		}
		total := spec.TotalCores()
		p := rng.Intn(total) + 1
		if p < 2 {
			p = 2
			if total < 2 {
				return true // degenerate machine, nothing to test
			}
		}
		var pl topo.Placement = topo.Block{}
		if rng.Intn(2) == 0 {
			pl = topo.RoundRobin{}
		}
		// Random but ordered cost magnitudes (local < socket < node).
		base := (1 + rng.Float64()) * 1e-6
		params := fabric.Params{
			Classes: map[topo.LinkClass]fabric.Link{
				topo.SharedCache: {Alpha: base * 0.6, Lambda: base * 0.15, Sigma: 0.05},
				topo.SameSocket:  {Alpha: base, Lambda: base * 0.25, Sigma: 0.05},
				topo.CrossSocket: {Alpha: base * 2, Lambda: base * 0.6, Sigma: 0.05},
				topo.CrossNode:   {Alpha: base * (20 + 60*rng.Float64()), Lambda: base * 8, Sigma: 0.1},
			},
			SelfOverhead: base * 0.5,
			Seed:         seed,
		}
		fab, err := fabric.New(spec, pl, p, params)
		if err != nil {
			t.Logf("seed %d: fabric: %v", seed, err)
			return false
		}
		tuned, err := Tune(fab.TrueProfile(), Options{})
		if err != nil {
			t.Logf("seed %d: tune: %v", seed, err)
			return false
		}
		if !tuned.Schedule().IsBarrier() {
			t.Logf("seed %d: not a barrier", seed)
			return false
		}
		w := mpi.NewWorld(fab)
		delayed := []int{0, p - 1}
		if err := run.Validate(w, tuned.Func(), 0.25, delayed); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTuneExtendedBuildersOnRandomMachines repeats the property with
// the extended component set, which exercises the ring and k-ary builders
// inside arbitrary hierarchies.
func TestQuickTuneExtendedBuildersOnRandomMachines(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed ^ 0xabcdef)
		spec := topo.Spec{
			Name:           "random-ext",
			Nodes:          rng.Intn(4) + 1,
			SocketsPerNode: 2,
			CoresPerSocket: rng.Intn(4) + 2,
		}
		p := rng.Intn(spec.TotalCores()-1) + 2
		fab, err := fabric.New(spec, topo.RoundRobin{}, p, fabric.GigEParams(seed))
		if err != nil {
			return false
		}
		tuned, err := Tune(fab.TrueProfile(), Options{Builders: sched.ExtendedBuilders()})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return tuned.Schedule().IsBarrier()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
