// Package core assembles the paper's primary contribution into one pipeline:
// given a topological profile of a platform (§IV), it clusters the ranks by
// physical locality (§VII.A), greedily composes a hybrid barrier from
// component algorithms using the coupled cost model (§VII.B), verifies that
// the result globally synchronises (Eq. 3), and produces both an executable
// plan and hard-coded source for the specialised barrier (§VII.C).
package core

import (
	"fmt"

	"topobarrier/internal/analyze"
	"topobarrier/internal/codegen"
	"topobarrier/internal/compose"
	"topobarrier/internal/mpi"
	"topobarrier/internal/predict"
	"topobarrier/internal/probe"
	"topobarrier/internal/profile"
	"topobarrier/internal/run"
	"topobarrier/internal/sched"
	"topobarrier/internal/search"
	"topobarrier/internal/sss"
	"topobarrier/internal/telemetry"
)

// Options configures the adaptive tuning pipeline. The zero value reproduces
// the paper's configuration: the linear/dissemination/tree component set,
// SSS clustering at 35 % sparseness with unbounded depth, and the
// first-stage-Eq.1 cost policy.
type Options struct {
	// Builders is the component algorithm set; nil selects the paper's three.
	Builders []sched.Builder
	// Clustering configures the SSS hierarchy construction.
	Clustering sss.Options
	// Policy selects the Eq. 1 / Eq. 2 weighting of predicted batch costs.
	Policy predict.CostPolicy
	// StageOverhead is the per-stage penalty of the predictor.
	StageOverhead float64
	// Refine, when positive, follows the greedy composition with that many
	// candidate evaluations of local-search refinement (§VIII future work),
	// seeded with the composed schedule. A refined schedule replaces the
	// composed one only when it prices cheaper and passes the same barriervet
	// gate; otherwise the composition stands. The pass is deterministic for a
	// fixed RefineSeed regardless of RefineWorkers.
	Refine int
	// RefineSeed is the refinement search's randomness seed.
	RefineSeed uint64
	// RefineWorkers bounds the refinement portfolio's goroutines; 0 uses all
	// cores. It never changes the result, only the wall-clock time.
	RefineWorkers int
	// RefineBatch, when above 1, makes the refinement search evaluate
	// mutations in best-of-RefineBatch batches (search.AnnealOptions
	// .BatchSize) — the large-P configuration, where each kept move should
	// be the pick of several cheap cluster-pruned proposals.
	RefineBatch int
	// Tracer, when non-nil, records one span per pipeline phase
	// (tune.profile, tune.compose, tune.vet, tune.refine, tune.plan) so a
	// tuning run can be inspected in chrome://tracing. Nil keeps every span
	// a pointer check.
	Tracer *telemetry.Tracer
	// Telemetry, when non-nil, is handed to the refinement search (its
	// candidate/transposition/adoption counters) and receives the pipeline's
	// tune_predicted_cost_seconds gauge.
	Telemetry *telemetry.Registry
	// ProfileCache, when non-nil, lets ProfileAndTune skip the measurement
	// phase entirely: profiles are keyed by a fingerprint of the fabric spec,
	// rank count, probe configuration, and CacheSalt, so a platform already
	// profiled under the same conditions tunes from the warm profile.
	ProfileCache *profile.Cache
	// CacheSalt is an extra fingerprint discriminator for conditions the
	// fabric spec does not encode (placement policy, noise seed).
	CacheSalt string
	// CertifyK, when positive, demands fault-resilience certification: the
	// vet pass runs the analyze.CertifyK prover and Tune fails when the tuned
	// schedule has a counterexample — a set of at most CertifyK ranks whose
	// silence breaks the barrier for the survivors. During refinement a
	// cheaper candidate with a counterexample is rejected the same way the
	// Error-finding gate rejects it, keeping the certified composition.
	CertifyK int
}

// Tuned is a specialised barrier produced for one profiled platform.
type Tuned struct {
	// Profile is the topological model the barrier was tuned for.
	Profile *profile.Profile
	// Tree is the locality hierarchy discovered by clustering.
	Tree *sss.Node
	// Result holds the composed schedule and the per-cluster decisions.
	Result *compose.Result
	// Report is the barriervet static analysis of the composed schedule;
	// schedules with Error-severity findings never reach this struct.
	Report *analyze.Report
	// Plan is the flattened executable form of the schedule.
	Plan *run.Plan
}

// PredictedCost returns the critical-path cost estimate of the tuned barrier.
func (t *Tuned) PredictedCost() float64 { return t.Result.PredictedCost }

// Schedule returns the composed signal pattern.
func (t *Tuned) Schedule() *sched.Schedule { return t.Result.Schedule }

// Func returns the barrier as an executable function.
func (t *Tuned) Func() run.Func { return t.Plan.Func() }

// GenerateSource emits hard-coded Go source for the tuned barrier.
func (t *Tuned) GenerateSource(opts codegen.Options) ([]byte, error) {
	return codegen.Generate(t.Result.Schedule, opts)
}

// Tune runs the adaptive construction against a profile.
func Tune(pf *profile.Profile, opts Options) (*Tuned, error) {
	if err := pf.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	builders := opts.Builders
	if builders == nil {
		builders = sched.PaperBuilders()
	}
	pd := &predict.Predictor{Prof: pf, Policy: opts.Policy, StageOverhead: opts.StageOverhead}
	composeSpan := opts.Tracer.Begin("tune.compose", -1, -1, -1)
	tree := sss.Tree(pf, opts.Clustering)
	res, err := compose.Hybrid(pd, tree, builders)
	composeSpan.End()
	if err != nil {
		return nil, err
	}
	// Static analysis gates plan compilation and source emission: a composed
	// schedule with Error-severity findings is a composer bug and must not
	// execute; the report also rides along on the Tuned value so callers can
	// surface warnings and redundancy opportunities.
	vetOpts := analyze.Options{Predictor: pd, CertifyK: opts.CertifyK}
	vetSpan := opts.Tracer.Begin("tune.vet", -1, -1, -1)
	rep := analyze.Analyze(res.Schedule, vetOpts)
	vetSpan.End()
	if err := rep.Err(); err != nil {
		return nil, fmt.Errorf("core: composed schedule fails barriervet: %w", err)
	}
	if cex := rep.ResilienceCounterexample(); cex != nil {
		return nil, fmt.Errorf("core: composed schedule is not %d-fault resilient: %s", opts.CertifyK, cex.Message)
	}
	if opts.Refine > 0 {
		refineSpan := opts.Tracer.Begin("tune.refine", -1, -1, -1)
		// The SSS leaf clusters that shaped the composition also prune the
		// refinement's proposal space (leaders are the leaf representatives,
		// Ranks[0] by construction). With fewer than two leaves the search
		// falls back to uniform proposals on its own.
		var clusters [][]int
		for _, leaf := range tree.Leaves() {
			clusters = append(clusters, leaf.Ranks)
		}
		sres, err := search.Anneal(pd, res.Schedule, search.AnnealOptions{
			Seed: opts.RefineSeed, Budget: opts.Refine, Workers: opts.RefineWorkers,
			Clusters: clusters, BatchSize: opts.RefineBatch,
			Telemetry: opts.Telemetry,
		})
		refineSpan.End()
		if err != nil {
			return nil, fmt.Errorf("core: refinement search: %w", err)
		}
		if sres.Cost < res.PredictedCost {
			// The refined schedule must clear the same gate as the composition;
			// an Error finding keeps the composed schedule instead of failing
			// the pipeline, since a verified fallback is in hand.
			vetSpan = opts.Tracer.Begin("tune.vet", -1, -1, -1)
			rrep := analyze.Analyze(sres.Schedule, vetOpts)
			vetSpan.End()
			if rrep.Err() == nil && rrep.ResilienceCounterexample() == nil {
				res.Schedule, res.PredictedCost = sres.Schedule, sres.Cost
				rep = rrep
			}
		}
	}
	planSpan := opts.Tracer.Begin("tune.plan", -1, -1, -1)
	plan, err := run.NewPlan(res.Schedule)
	planSpan.End()
	if err != nil {
		return nil, err
	}
	// Plan-level protocol checks over the compiled artifact; an Error here
	// (unmatched message, tag overflow) means the compiled form would break
	// a transport even though the schedule's matrices passed Eq. 3.
	rep.Findings = append(rep.Findings, analyze.CheckPlan(plan)...)
	if err := rep.Err(); err != nil {
		return nil, fmt.Errorf("core: compiled plan fails protocol check: %w", err)
	}
	opts.Telemetry.Gauge("tune_predicted_cost_seconds").Set(res.PredictedCost)
	return &Tuned{Profile: pf, Tree: tree, Result: res, Report: rep, Plan: plan}, nil
}

// ProfileAndTune profiles the platform of a world with the given benchmark
// configuration and immediately tunes a barrier for it — the full §III
// pipeline in one call. The profile is also returned via the Tuned value for
// storage and re-use. With Options.ProfileCache set, a platform already
// profiled under the same fingerprint (fabric spec, rank count, probe
// configuration, CacheSalt) skips the measurement phase and tunes from the
// warm profile; a miss measures as usual and populates the cache.
func ProfileAndTune(w *mpi.World, probeCfg probe.Config, opts Options) (*Tuned, error) {
	var fp profile.Fingerprint
	if opts.ProfileCache != nil {
		fp = ProfileFingerprint(w, probeCfg, opts.CacheSalt)
		if pf, hit, _ := opts.ProfileCache.Load(fp); hit {
			return Tune(pf, opts)
		}
	}
	span := opts.Tracer.Begin("tune.profile", -1, -1, -1)
	pf, err := probe.Measure(w, probeCfg)
	span.End()
	if err != nil {
		return nil, err
	}
	if opts.ProfileCache != nil {
		if err := opts.ProfileCache.Store(fp, pf); err != nil {
			return nil, fmt.Errorf("core: caching profile: %w", err)
		}
	}
	return Tune(pf, opts)
}

// ProfileFingerprint is the cache key ProfileAndTune uses for a simulated
// world: the fabric spec name, rank count, probe configuration, and any
// caller-supplied salt for conditions the spec does not encode.
func ProfileFingerprint(w *mpi.World, probeCfg probe.Config, salt string) profile.Fingerprint {
	return profile.FingerprintOf("sim", w.Fabric().Spec().Name,
		fmt.Sprintf("p=%d", w.Size()), probeCfg.Key(), salt)
}
