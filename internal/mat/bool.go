// Package mat provides the small dense matrix kernels used by the barrier
// models: boolean incidence matrices over the (OR, AND) semiring, which encode
// per-stage signal patterns, and dense float64 matrices, which hold pairwise
// cost profiles.
//
// Boolean matrices are stored as bitset rows so that the knowledge recurrence
// of the paper (Eq. 3: Ka = Ka-1 + Ka-1·Sa) runs in O(P²·P/64) per stage.
package mat

import (
	"fmt"
	"strings"
)

const wordBits = 64

// Bool is a dense P×P boolean matrix stored as one bitset per row.
// Bool{} is not usable; construct with NewBool or Identity.
type Bool struct {
	n     int
	words int      // words per row
	rows  []uint64 // n * words
}

// NewBool returns an n×n all-false boolean matrix.
func NewBool(n int) *Bool {
	if n < 0 {
		panic(fmt.Sprintf("mat: NewBool with negative size %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	return &Bool{n: n, words: w, rows: make([]uint64, n*w)}
}

// Identity returns the n×n identity matrix over the boolean semiring.
func Identity(n int) *Bool {
	m := NewBool(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// BoolFromRows builds a matrix from a slice of row slices. All rows must have
// length len(rows). It is intended for tests and literals.
func BoolFromRows(rows [][]bool) *Bool {
	n := len(rows)
	m := NewBool(n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("mat: BoolFromRows row %d has %d entries, want %d", i, len(r), n))
		}
		for j, v := range r {
			if v {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// N returns the dimension of the matrix.
func (m *Bool) N() int { return m.n }

func (m *Bool) check(i, j int) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %d×%d matrix", i, j, m.n, m.n))
	}
}

// At reports whether entry (i, j) is set.
func (m *Bool) At(i, j int) bool {
	m.check(i, j)
	return m.rows[i*m.words+j/wordBits]&(1<<(uint(j)%wordBits)) != 0
}

// Set assigns entry (i, j).
func (m *Bool) Set(i, j int, v bool) {
	m.check(i, j)
	w := &m.rows[i*m.words+j/wordBits]
	bit := uint64(1) << (uint(j) % wordBits)
	if v {
		*w |= bit
	} else {
		*w &^= bit
	}
}

// Row returns the column indices set in row i, in increasing order.
func (m *Bool) Row(i int) []int {
	m.check(i, 0)
	var out []int
	base := i * m.words
	for w := 0; w < m.words; w++ {
		word := m.rows[base+w]
		for word != 0 {
			b := trailingZeros(word)
			out = append(out, w*wordBits+b)
			word &^= 1 << uint(b)
		}
	}
	return out
}

// Col returns the row indices i for which entry (i, j) is set, increasing.
func (m *Bool) Col(j int) []int {
	m.check(0, j)
	var out []int
	for i := 0; i < m.n; i++ {
		if m.At(i, j) {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Bool) Clone() *Bool {
	c := NewBool(m.n)
	copy(c.rows, m.rows)
	return c
}

// Equal reports whether m and o have the same dimension and entries.
func (m *Bool) Equal(o *Bool) bool {
	if m.n != o.n {
		return false
	}
	for k := range m.rows {
		if m.rows[k] != o.rows[k] {
			return false
		}
	}
	return true
}

// IsZero reports whether the matrix has no set entries.
func (m *Bool) IsZero() bool {
	for _, w := range m.rows {
		if w != 0 {
			return false
		}
	}
	return true
}

// AllSet reports whether every entry is set (the Eq. 3 barrier condition).
func (m *Bool) AllSet() bool {
	return m.Count() == m.n*m.n
}

// Count returns the number of set entries.
func (m *Bool) Count() int {
	c := 0
	for _, w := range m.rows {
		c += popcount(w)
	}
	return c
}

// Or sets m |= o element-wise and returns m.
func (m *Bool) Or(o *Bool) *Bool {
	if m.n != o.n {
		panic(fmt.Sprintf("mat: Or dimension mismatch %d vs %d", m.n, o.n))
	}
	for k := range m.rows {
		m.rows[k] |= o.rows[k]
	}
	return m
}

// T returns the transpose of m as a new matrix.
func (m *Bool) T() *Bool {
	t := NewBool(m.n)
	for i := 0; i < m.n; i++ {
		for _, j := range m.Row(i) {
			t.Set(j, i, true)
		}
	}
	return t
}

// Mul returns the boolean semiring product m·o: the result has entry (i, j)
// set iff there is an index k with m[i][k] and o[k][j].
func (m *Bool) Mul(o *Bool) *Bool {
	if m.n != o.n {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %d vs %d", m.n, o.n))
	}
	r := NewBool(m.n)
	for i := 0; i < m.n; i++ {
		dst := r.rows[i*r.words : (i+1)*r.words]
		for _, k := range m.Row(i) {
			src := o.rows[k*o.words : (k+1)*o.words]
			for w := range dst {
				dst[w] |= src[w]
			}
		}
	}
	return r
}

// Propagate computes one step of the paper's knowledge recurrence
// (Eq. 3): it returns K + K·S, where + and · are boolean semiring operations.
// K[i][j] means "rank j knows that rank i has arrived"; multiplying by the
// stage matrix S spreads each rank's knowledge along the signals it sends.
func Propagate(k, s *Bool) *Bool {
	if k.n != s.n {
		panic(fmt.Sprintf("mat: Propagate dimension mismatch %d vs %d", k.n, s.n))
	}
	// (K + K·S)[i] = K[i] | OR_{m: K[i][m]} S[m].
	r := k.Clone()
	for i := 0; i < k.n; i++ {
		dst := r.rows[i*r.words : (i+1)*r.words]
		for _, m := range k.Row(i) {
			src := s.rows[m*s.words : (m+1)*s.words]
			for w := range dst {
				dst[w] |= src[w]
			}
		}
	}
	return r
}

// String renders the matrix as rows of 0/1 characters, suitable for tests and
// small stage dumps (as in the paper's Figures 2-4).
func (m *Bool) String() string {
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if m.At(i, j) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
			if j+1 < m.n {
				b.WriteByte(' ')
			}
		}
		if i+1 < m.n {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func popcount(x uint64) int {
	// Hacker's Delight population count; avoids math/bits to keep the kernel
	// self-contained (and identical on all platforms).
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

func trailingZeros(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
