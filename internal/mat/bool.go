// Package mat provides the small dense matrix kernels used by the barrier
// models: boolean incidence matrices over the (OR, AND) semiring, which encode
// per-stage signal patterns, and dense float64 matrices, which hold pairwise
// cost profiles.
//
// Boolean matrices are stored as bitset rows so that the knowledge recurrence
// of the paper (Eq. 3: Ka = Ka-1 + Ka-1·Sa) runs in O(P²·P/64) per stage.
package mat

import (
	"fmt"
	"strings"
)

const wordBits = 64

// Bool is a dense P×P boolean matrix stored as one bitset per row.
// Bool{} is not usable; construct with NewBool or Identity.
type Bool struct {
	n     int
	words int      // words per row
	rows  []uint64 // n * words
}

// NewBool returns an n×n all-false boolean matrix.
func NewBool(n int) *Bool {
	if n < 0 {
		panic(fmt.Sprintf("mat: NewBool with negative size %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	return &Bool{n: n, words: w, rows: make([]uint64, n*w)}
}

// Identity returns the n×n identity matrix over the boolean semiring.
func Identity(n int) *Bool {
	m := NewBool(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// BoolFromRows builds a matrix from a slice of row slices. All rows must have
// length len(rows). It is intended for tests and literals.
func BoolFromRows(rows [][]bool) *Bool {
	n := len(rows)
	m := NewBool(n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("mat: BoolFromRows row %d has %d entries, want %d", i, len(r), n))
		}
		for j, v := range r {
			if v {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// N returns the dimension of the matrix.
func (m *Bool) N() int { return m.n }

func (m *Bool) check(i, j int) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %d×%d matrix", i, j, m.n, m.n))
	}
}

// At reports whether entry (i, j) is set.
func (m *Bool) At(i, j int) bool {
	m.check(i, j)
	return m.rows[i*m.words+j/wordBits]&(1<<(uint(j)%wordBits)) != 0
}

// Set assigns entry (i, j).
func (m *Bool) Set(i, j int, v bool) {
	m.check(i, j)
	w := &m.rows[i*m.words+j/wordBits]
	bit := uint64(1) << (uint(j) % wordBits)
	if v {
		*w |= bit
	} else {
		*w &^= bit
	}
}

// Row returns the column indices set in row i, in increasing order.
func (m *Bool) Row(i int) []int {
	m.check(i, 0)
	var out []int
	base := i * m.words
	for w := 0; w < m.words; w++ {
		word := m.rows[base+w]
		for word != 0 {
			b := trailingZeros(word)
			out = append(out, w*wordBits+b)
			word &^= 1 << uint(b)
		}
	}
	return out
}

// Col returns the row indices i for which entry (i, j) is set, increasing.
func (m *Bool) Col(j int) []int {
	m.check(0, j)
	var out []int
	for i := 0; i < m.n; i++ {
		if m.At(i, j) {
			out = append(out, i)
		}
	}
	return out
}

// RowWords returns the bitset words backing row i. The slice aliases the
// matrix storage: writes through it mutate the matrix, and it is invalidated
// by nothing (the backing array never reallocates). It exists so word-at-a-
// time kernels — the incremental knowledge recurrence, schedule hashing —
// can avoid the per-bit At/Set accessors and the allocation in Row.
func (m *Bool) RowWords(i int) []uint64 {
	m.check(i, 0)
	return m.rows[i*m.words : (i+1)*m.words]
}

// OrRowInto ORs row i into dst, which must have exactly WordsPerRow words.
// It is the inner step of the knowledge recurrence (spreading rank m's
// knowledge along the signals it sends) without constructing index slices.
func (m *Bool) OrRowInto(i int, dst []uint64) {
	m.check(i, 0)
	if len(dst) != m.words {
		panic(fmt.Sprintf("mat: OrRowInto dst has %d words, want %d", len(dst), m.words))
	}
	src := m.rows[i*m.words : (i+1)*m.words]
	for w := range dst {
		dst[w] |= src[w]
	}
}

// SpreadRow computes dst = src | OR_{b set in src} row b of m, where src and
// dst are row bitsets of m's dimension (WordsPerRow words each) and dst does
// not alias src. It is one row of the knowledge recurrence K + K·S — the
// whole inner loop of the incremental evaluator — done with direct storage
// access instead of per-bit accessor calls.
func (m *Bool) SpreadRow(src, dst []uint64) {
	if len(src) != m.words || len(dst) != m.words {
		panic(fmt.Sprintf("mat: SpreadRow rows have %d/%d words, want %d", len(src), len(dst), m.words))
	}
	if m.words == 1 {
		word := src[0]
		acc := word
		for word != 0 {
			b := trailingZeros(word)
			word &^= 1 << uint(b)
			acc |= m.rows[b]
		}
		dst[0] = acc
		return
	}
	copy(dst, src)
	for w := 0; w < m.words; w++ {
		word := src[w]
		for word != 0 {
			b := trailingZeros(word)
			word &^= 1 << uint(b)
			base := (w*wordBits + b) * m.words
			row := m.rows[base : base+m.words]
			for x := range dst {
				dst[x] |= row[x]
			}
		}
	}
}

// WordsPerRow returns the number of uint64 words backing each row.
func (m *Bool) WordsPerRow() int { return m.words }

// Words exposes the full backing word slice, rows concatenated in order, each
// WordsPerRow long. It exists for evaluation loops that walk every row of a
// stage matrix and cannot afford a bounds-checked accessor call per row; the
// slice aliases matrix storage and writes through it must respect the padding
// bits (kept zero) past column N-1 in each row's last word.
func (m *Bool) Words() []uint64 { return m.rows }

// OrColInto sets bit i of dst for every row i whose entry (i, j) is set; dst
// is a bitset over row indices with at least (N+63)/64 words. It is the
// column-scan of the incremental knowledge recurrence (which rows spread
// along signal j) without per-entry accessor calls.
func (m *Bool) OrColInto(j int, dst []uint64) {
	m.check(0, j)
	if len(dst) < (m.n+wordBits-1)/wordBits {
		panic(fmt.Sprintf("mat: OrColInto dst has %d words for %d rows", len(dst), m.n))
	}
	w := j / wordBits
	bit := uint64(1) << (uint(j) % wordBits)
	for i := 0; i < m.n; i++ {
		if m.rows[i*m.words+w]&bit != 0 {
			dst[i/wordBits] |= 1 << (uint(i) % wordBits)
		}
	}
}

// CopyFrom overwrites m with the entries of o (same dimension required)
// without allocating.
func (m *Bool) CopyFrom(o *Bool) {
	if m.n != o.n {
		panic(fmt.Sprintf("mat: CopyFrom dimension mismatch %d vs %d", m.n, o.n))
	}
	copy(m.rows, o.rows)
}

// Clone returns a deep copy of m.
func (m *Bool) Clone() *Bool {
	c := NewBool(m.n)
	copy(c.rows, m.rows)
	return c
}

// Equal reports whether m and o have the same dimension and entries. Identical
// matrices and equal-by-words matrices short-circuit without a bit-level scan.
func (m *Bool) Equal(o *Bool) bool {
	if m == o {
		return true
	}
	if m.n != o.n {
		return false
	}
	for k := range m.rows {
		if m.rows[k] != o.rows[k] {
			return false
		}
	}
	return true
}

// RowEqual reports whether row i of m equals row oi of o, word by word.
func (m *Bool) RowEqual(i int, o *Bool, oi int) bool {
	m.check(i, 0)
	o.check(oi, 0)
	if m.n != o.n {
		return false
	}
	a := m.rows[i*m.words : (i+1)*m.words]
	b := o.rows[oi*o.words : (oi+1)*o.words]
	for w := range a {
		if a[w] != b[w] {
			return false
		}
	}
	return true
}

// IsZero reports whether the matrix has no set entries.
func (m *Bool) IsZero() bool {
	for _, w := range m.rows {
		if w != 0 {
			return false
		}
	}
	return true
}

// AllSet reports whether every entry is set (the Eq. 3 barrier condition).
// It compares words directly and exits at the first hole, so the common
// not-yet-saturated case costs one word, not a full popcount.
func (m *Bool) AllSet() bool {
	if m.n == 0 {
		return true
	}
	tail := m.words - 1
	tailMask := ^uint64(0)
	if r := uint(m.n % wordBits); r != 0 {
		tailMask = (uint64(1) << r) - 1
	}
	for i := 0; i < m.n; i++ {
		base := i * m.words
		for w := 0; w < tail; w++ {
			if m.rows[base+w] != ^uint64(0) {
				return false
			}
		}
		if m.rows[base+tail] != tailMask {
			return false
		}
	}
	return true
}

// Count returns the number of set entries.
func (m *Bool) Count() int {
	c := 0
	for _, w := range m.rows {
		c += popcount(w)
	}
	return c
}

// Or sets m |= o element-wise and returns m.
func (m *Bool) Or(o *Bool) *Bool {
	if m.n != o.n {
		panic(fmt.Sprintf("mat: Or dimension mismatch %d vs %d", m.n, o.n))
	}
	for k := range m.rows {
		m.rows[k] |= o.rows[k]
	}
	return m
}

// T returns the transpose of m as a new matrix.
func (m *Bool) T() *Bool {
	t := NewBool(m.n)
	for i := 0; i < m.n; i++ {
		for _, j := range m.Row(i) {
			t.Set(j, i, true)
		}
	}
	return t
}

// Mul returns the boolean semiring product m·o: the result has entry (i, j)
// set iff there is an index k with m[i][k] and o[k][j].
func (m *Bool) Mul(o *Bool) *Bool {
	if m.n != o.n {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %d vs %d", m.n, o.n))
	}
	r := NewBool(m.n)
	for i := 0; i < m.n; i++ {
		dst := r.rows[i*r.words : (i+1)*r.words]
		for _, k := range m.Row(i) {
			src := o.rows[k*o.words : (k+1)*o.words]
			for w := range dst {
				dst[w] |= src[w]
			}
		}
	}
	return r
}

// Propagate computes one step of the paper's knowledge recurrence
// (Eq. 3): it returns K + K·S, where + and · are boolean semiring operations.
// K[i][j] means "rank j knows that rank i has arrived"; multiplying by the
// stage matrix S spreads each rank's knowledge along the signals it sends.
func Propagate(k, s *Bool) *Bool {
	if k.n != s.n {
		panic(fmt.Sprintf("mat: Propagate dimension mismatch %d vs %d", k.n, s.n))
	}
	// (K + K·S)[i] = K[i] | OR_{m: K[i][m]} S[m].
	r := k.Clone()
	for i := 0; i < k.n; i++ {
		dst := r.rows[i*r.words : (i+1)*r.words]
		for _, m := range k.Row(i) {
			src := s.rows[m*s.words : (m+1)*s.words]
			for w := range dst {
				dst[w] |= src[w]
			}
		}
	}
	return r
}

// PropagateInto computes dst = K + K·S without allocating: the in-place form
// of Propagate for evaluators that reuse per-stage knowledge matrices. dst
// must not alias k or s. Rows of K that are already saturated (all bits set)
// are copied without the spread loop: knowledge is monotone, so a full row
// stays full — and in the closing stages of a barrier most rows are full,
// which is where the recurrence otherwise spends its time.
func PropagateInto(dst, k, s *Bool) {
	if k.n != s.n || dst.n != k.n {
		panic(fmt.Sprintf("mat: PropagateInto dimension mismatch %d/%d/%d", dst.n, k.n, s.n))
	}
	copy(dst.rows, k.rows)
	full := k.words - 1
	tailMask := ^uint64(0)
	if r := uint(k.n % wordBits); r != 0 {
		tailMask = (uint64(1) << r) - 1
	}
	for i := 0; i < k.n; i++ {
		base := i * k.words
		sat := k.rows[base+full] == tailMask
		for w := 0; sat && w < full; w++ {
			sat = k.rows[base+w] == ^uint64(0)
		}
		if sat {
			continue
		}
		out := dst.rows[base : base+dst.words]
		for w := 0; w < k.words; w++ {
			word := k.rows[base+w]
			for word != 0 {
				b := trailingZeros(word)
				word &^= 1 << uint(b)
				mrow := (w*wordBits + b) * s.words
				src := s.rows[mrow : mrow+s.words]
				for x := range out {
					out[x] |= src[x]
				}
			}
		}
	}
}

// PropagateSilencedInto computes dst = K + K·S′, where S′ is S with the rows
// of silenced ranks treated as zero: a silenced rank receives knowledge but
// never forwards it. silent is a bitset over ranks with at least (N+63)/64
// words. dst must not alias k or s. This is the inner step of the k-fault
// resilience certifier — masking at spread time avoids cloning and zeroing a
// stage matrix for every candidate fault set.
func PropagateSilencedInto(dst, k, s *Bool, silent []uint64) {
	if k.n != s.n || dst.n != k.n {
		panic(fmt.Sprintf("mat: PropagateSilencedInto dimension mismatch %d/%d/%d", dst.n, k.n, s.n))
	}
	if len(silent) < (k.n+wordBits-1)/wordBits {
		panic(fmt.Sprintf("mat: PropagateSilencedInto silent mask has %d words for %d ranks", len(silent), k.n))
	}
	copy(dst.rows, k.rows)
	for i := 0; i < k.n; i++ {
		base := i * k.words
		out := dst.rows[base : base+dst.words]
		for w := 0; w < k.words; w++ {
			word := k.rows[base+w] &^ silent[w] // silenced relays spread nothing
			for word != 0 {
				b := trailingZeros(word)
				word &^= 1 << uint(b)
				mrow := (w*wordBits + b) * s.words
				src := s.rows[mrow : mrow+s.words]
				for x := range out {
					out[x] |= src[x]
				}
			}
		}
	}
}

// RowCoversAllExcept reports whether row i has every bit set outside the
// excluded bitset — the survivor-closure test of the resilience certifier
// (row i of the final knowledge matrix must cover every surviving rank).
// excl must have at least (N+63)/64 words; bits of excl beyond column N-1
// are ignored.
func (m *Bool) RowCoversAllExcept(i int, excl []uint64) bool {
	m.check(i, 0)
	if len(excl) < m.words {
		panic(fmt.Sprintf("mat: RowCoversAllExcept mask has %d words, want %d", len(excl), m.words))
	}
	tail := m.words - 1
	tailMask := ^uint64(0)
	if r := uint(m.n % wordBits); r != 0 {
		tailMask = (uint64(1) << r) - 1
	}
	base := i * m.words
	for w := 0; w < tail; w++ {
		if m.rows[base+w]|excl[w] != ^uint64(0) {
			return false
		}
	}
	return (m.rows[base+tail]|excl[tail])&tailMask == tailMask
}

// ReachableFrom computes the set of columns reachable from the seed bitset by
// repeatedly following set rows of m (transitive closure of one frontier over
// the union signal graph), writing the result over seed. Rows of silenced
// ranks are not followed, mirroring PropagateSilencedInto. It is the static
// reachability primitive the resilience certifier's candidate pruning uses to
// find articulation ranks; silent may be nil for an unrestricted walk.
func (m *Bool) ReachableFrom(seed, silent []uint64) {
	if len(seed) != m.words {
		panic(fmt.Sprintf("mat: ReachableFrom seed has %d words, want %d", len(seed), m.words))
	}
	frontier := make([]uint64, m.words)
	next := make([]uint64, m.words)
	copy(frontier, seed)
	for {
		grew := false
		for w := range next {
			next[w] = 0
		}
		for w := 0; w < m.words; w++ {
			word := frontier[w]
			if silent != nil {
				word &^= silent[w]
			}
			for word != 0 {
				b := trailingZeros(word)
				word &^= 1 << uint(b)
				row := m.rows[(w*wordBits+b)*m.words : (w*wordBits+b+1)*m.words]
				for x := range next {
					next[x] |= row[x] &^ seed[x]
				}
			}
		}
		for w := range next {
			if next[w] != 0 {
				grew = true
				seed[w] |= next[w]
			}
		}
		if !grew {
			return
		}
		frontier, next = next, frontier
	}
}

// String renders the matrix as rows of 0/1 characters, suitable for tests and
// small stage dumps (as in the paper's Figures 2-4).
func (m *Bool) String() string {
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if m.At(i, j) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
			if j+1 < m.n {
				b.WriteByte(' ')
			}
		}
		if i+1 < m.n {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func popcount(x uint64) int {
	// Hacker's Delight population count; avoids math/bits to keep the kernel
	// self-contained (and identical on all platforms).
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// deBruijn64 and its table map an isolated low bit to its index in O(1);
// like popcount above, this keeps the kernel free of math/bits.
const deBruijn64 = 0x03f79d71b4ca8b09

var deBruijnIdx = [64]int{
	0, 1, 56, 2, 57, 49, 28, 3, 61, 58, 42, 50, 38, 29, 17, 4,
	62, 47, 59, 36, 45, 43, 51, 22, 53, 39, 33, 30, 24, 18, 12, 5,
	63, 55, 48, 27, 60, 41, 37, 16, 46, 35, 44, 21, 52, 32, 23, 11,
	54, 26, 40, 15, 34, 20, 31, 10, 25, 14, 19, 9, 13, 8, 7, 6,
}

func trailingZeros(x uint64) int {
	if x == 0 {
		return 64
	}
	return deBruijnIdx[((x&-x)*deBruijn64)>>58]
}
