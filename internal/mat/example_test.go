package mat_test

import (
	"fmt"

	"topobarrier/internal/mat"
)

// ExamplePropagate walks the paper's Eq. 3 knowledge recurrence through the
// 4-rank linear barrier: after the arrival stage rank 0 knows everything,
// after the departure stage everyone knows everything.
func ExamplePropagate() {
	arrival := mat.BoolFromRows([][]bool{
		{false, false, false, false},
		{true, false, false, false},
		{true, false, false, false},
		{true, false, false, false},
	})
	departure := arrival.T()

	k := mat.Identity(4)
	k = mat.Propagate(k, arrival)
	fmt.Println("after arrival:  ", k.Count(), "of 16 entries known")
	k = mat.Propagate(k, departure)
	fmt.Println("after departure:", k.Count(), "of 16 entries known, barrier:", k.AllSet())
	// Output:
	// after arrival:   7 of 16 entries known
	// after departure: 16 of 16 entries known, barrier: true
}
