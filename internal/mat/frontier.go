package mat

import "fmt"

// This file holds the large-P fast path for the Eq. 3 knowledge recurrence.
//
// The dense kernels in bool.go walk knowledge row-wise: spreading row i of K
// costs one row union per set bit, so a closure over a saturating schedule is
// O(P³/64) words per stage. Working column-wise ("receiver-wise") turns the
// same recurrence into
//
//	know′[j] = know[j] ∪ ⋃_{m : S[m][j]} know[m]
//
// where know[j] — column j of K — is the set of arrivals rank j has heard
// about. Each stage then costs one row union per *signal*, O((P + signals)
// × P/64) words, because boolean OR is order-independent the result is
// bit-identical to the dense path. Early in a closure the know sets are tiny,
// so they are held in HybridRow sparse form until they pass a fill threshold;
// late in a closure most rows are full, so full receivers are skipped
// entirely (knowledge is monotone — a full row stays full).

// hybridDenseThreshold returns the set-bit count past which a HybridRow
// switches from the sorted-index representation to a dense bitset. The
// sparse merge costs O(a+b) branchy element steps against the bitset's
// O(n/64) word steps, which cross over around n/16 entries.
func hybridDenseThreshold(n int) int {
	t := n / 16
	if t < 8 {
		t = 8
	}
	return t
}

// HybridRow is a set over columns 0..n-1 that starts as a sorted index list
// and densifies to a bitset once it passes hybridDenseThreshold. It is the
// row representation of the frontier closure kernels: dissemination-style
// schedules keep knowledge sets tiny for the first ~log P stages, where the
// sparse form makes a union proportional to the set sizes rather than to P.
// The zero value is not usable; construct with NewHybridRow.
type HybridRow struct {
	n    int
	ones int
	idx  []int32  // sorted, unique; meaningful while bits == nil
	bits []uint64 // dense form; nil while sparse
}

// NewHybridRow returns an empty set over columns 0..n-1.
func NewHybridRow(n int) *HybridRow {
	if n < 0 {
		panic(fmt.Sprintf("mat: NewHybridRow with negative size %d", n))
	}
	return &HybridRow{n: n}
}

// N returns the column universe size.
func (r *HybridRow) N() int { return r.n }

// Count returns the number of set columns.
func (r *HybridRow) Count() int { return r.ones }

// Full reports whether every column is set.
func (r *HybridRow) Full() bool { return r.ones == r.n }

// IsDense reports whether the row has densified to a bitset.
func (r *HybridRow) IsDense() bool { return r.bits != nil }

// Clone returns a deep copy of r.
func (r *HybridRow) Clone() *HybridRow {
	c := &HybridRow{n: r.n, ones: r.ones}
	if r.bits != nil {
		c.bits = append([]uint64(nil), r.bits...)
	} else {
		c.idx = append([]int32(nil), r.idx...)
	}
	return c
}

// Contains reports whether column j is set.
func (r *HybridRow) Contains(j int) bool {
	if j < 0 || j >= r.n {
		panic(fmt.Sprintf("mat: HybridRow index %d out of range for %d columns", j, r.n))
	}
	if r.bits != nil {
		return r.bits[j/wordBits]&(1<<(uint(j)%wordBits)) != 0
	}
	lo, hi := 0, len(r.idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(r.idx[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(r.idx) && int(r.idx[lo]) == j
}

// Add sets column j and reports whether the row grew.
func (r *HybridRow) Add(j int) bool {
	if j < 0 || j >= r.n {
		panic(fmt.Sprintf("mat: HybridRow index %d out of range for %d columns", j, r.n))
	}
	if r.bits != nil {
		w := &r.bits[j/wordBits]
		bit := uint64(1) << (uint(j) % wordBits)
		if *w&bit != 0 {
			return false
		}
		*w |= bit
		r.ones++
		return true
	}
	lo, hi := 0, len(r.idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(r.idx[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.idx) && int(r.idx[lo]) == j {
		return false
	}
	r.idx = append(r.idx, 0)
	copy(r.idx[lo+1:], r.idx[lo:])
	r.idx[lo] = int32(j)
	r.ones++
	if r.ones > hybridDenseThreshold(r.n) {
		r.densify()
	}
	return true
}

// SubsetOf reports whether every column of r is set in o. It is the cheap
// "would this union even grow the receiver" test that lets the frontier
// closure keep sharing an unchanged row instead of cloning it.
func (r *HybridRow) SubsetOf(o *HybridRow) bool {
	if r.n != o.n {
		panic(fmt.Sprintf("mat: HybridRow SubsetOf dimension mismatch %d vs %d", r.n, o.n))
	}
	if r.ones > o.ones {
		return false
	}
	if o.Full() {
		return true
	}
	switch {
	case r.bits != nil && o.bits != nil:
		for w, v := range r.bits {
			if v&^o.bits[w] != 0 {
				return false
			}
		}
		return true
	case r.bits == nil && o.bits != nil:
		for _, j := range r.idx {
			if o.bits[int(j)/wordBits]&(1<<(uint(j)%wordBits)) == 0 {
				return false
			}
		}
		return true
	case r.bits != nil:
		// Dense r inside sparse o implies r.ones <= o.ones <= threshold;
		// fall back to the per-column test.
		for w, v := range r.bits {
			for v != 0 {
				b := trailingZeros(v)
				v &^= 1 << uint(b)
				if !o.Contains(w*wordBits + b) {
					return false
				}
			}
		}
		return true
	default:
		i, j := 0, 0
		for i < len(r.idx) {
			for j < len(o.idx) && o.idx[j] < r.idx[i] {
				j++
			}
			if j >= len(o.idx) || o.idx[j] != r.idx[i] {
				return false
			}
			i++
		}
		return true
	}
}

// OrRow unions o into r and reports whether r grew.
func (r *HybridRow) OrRow(o *HybridRow) bool {
	if r.n != o.n {
		panic(fmt.Sprintf("mat: HybridRow OrRow dimension mismatch %d vs %d", r.n, o.n))
	}
	if o.ones == 0 || r.Full() {
		return false
	}
	if r.bits == nil && o.bits == nil {
		merged := make([]int32, 0, len(r.idx)+len(o.idx))
		i, j := 0, 0
		for i < len(r.idx) && j < len(o.idx) {
			switch {
			case r.idx[i] < o.idx[j]:
				merged = append(merged, r.idx[i])
				i++
			case r.idx[i] > o.idx[j]:
				merged = append(merged, o.idx[j])
				j++
			default:
				merged = append(merged, r.idx[i])
				i++
				j++
			}
		}
		merged = append(merged, r.idx[i:]...)
		merged = append(merged, o.idx[j:]...)
		grew := len(merged) > len(r.idx)
		r.idx, r.ones = merged, len(merged)
		if r.ones > hybridDenseThreshold(r.n) {
			r.densify()
		}
		return grew
	}
	r.densify()
	before := r.ones
	if o.bits != nil {
		ones := 0
		for w, v := range o.bits {
			r.bits[w] |= v
			ones += popcount(r.bits[w])
		}
		r.ones = ones
	} else {
		for _, j := range o.idx {
			w := &r.bits[int(j)/wordBits]
			bit := uint64(1) << (uint(j) % wordBits)
			if *w&bit == 0 {
				*w |= bit
				r.ones++
			}
		}
	}
	return r.ones > before
}

// OrWords unions a dense word bitset (at least (n+63)/64 words, padding bits
// zero) into r and reports whether r grew.
func (r *HybridRow) OrWords(src []uint64) bool {
	words := (r.n + wordBits - 1) / wordBits
	if len(src) < words {
		panic(fmt.Sprintf("mat: HybridRow OrWords src has %d words, want %d", len(src), words))
	}
	r.densify()
	before := r.ones
	ones := 0
	for w := 0; w < words; w++ {
		r.bits[w] |= src[w]
		ones += popcount(r.bits[w])
	}
	r.ones = ones
	return r.ones > before
}

// Indices appends the set columns to dst in increasing order and returns it.
func (r *HybridRow) Indices(dst []int) []int {
	if r.bits != nil {
		for w, v := range r.bits {
			for v != 0 {
				b := trailingZeros(v)
				v &^= 1 << uint(b)
				dst = append(dst, w*wordBits+b)
			}
		}
		return dst
	}
	for _, j := range r.idx {
		dst = append(dst, int(j))
	}
	return dst
}

func (r *HybridRow) densify() {
	if r.bits != nil {
		return
	}
	r.bits = make([]uint64, (r.n+wordBits-1)/wordBits)
	for _, j := range r.idx {
		r.bits[int(j)/wordBits] |= 1 << (uint(j) % wordBits)
	}
	r.idx = nil
}

// FrontierClosure reports whether the stage sequence closes the Eq. 3
// recurrence — every rank ends up knowing every arrival — using the
// receiver-wise hybrid-row kernel. The verdict is bit-identical to running
// Propagate from Identity(p) and testing AllSet (boolean OR is
// order-independent), but each stage costs one row union per signal instead
// of one per set knowledge bit, rows are shared copy-on-write with the
// previous stage when no signal grows them, and receivers that have
// saturated are never touched again. It returns early once every row is
// full: knowledge is monotone, so later stages cannot unclose a closure.
func FrontierClosure(p int, stages []*Bool) bool {
	if p <= 1 {
		return true
	}
	know := make([]*HybridRow, p)
	for j := range know {
		know[j] = NewHybridRow(p)
		know[j].Add(j)
	}
	fullCnt := 0
	next := make([]*HybridRow, p)
	owned := make([]bool, p)
	for _, s := range stages {
		if s.n != p {
			panic(fmt.Sprintf("mat: FrontierClosure stage is %d×%d, want %d", s.n, s.n, p))
		}
		copy(next, know)
		for j := range owned {
			owned[j] = false
		}
		for m := 0; m < p; m++ {
			src := know[m]
			base := m * s.words
			for w := 0; w < s.words; w++ {
				word := s.rows[base+w]
				for word != 0 {
					b := trailingZeros(word)
					word &^= 1 << uint(b)
					j := w*wordBits + b
					if next[j].Full() {
						continue
					}
					if !owned[j] {
						if src.SubsetOf(next[j]) {
							continue
						}
						next[j] = next[j].Clone()
						owned[j] = true
					}
					if next[j].OrRow(src) && next[j].Full() {
						fullCnt++
					}
				}
			}
		}
		copy(know, next)
		if fullCnt == p {
			return true
		}
	}
	return fullCnt == p
}

// PropagateTInto computes the receiver-wise (transposed) form of the Eq. 3
// step. kt holds the knowledge matrix transposed — row j of kt is column j
// of K, the set of arrivals rank j knows — and dst receives the transpose of
// K + K·S: dst[j] = kt[j] | OR over senders m with S[m][j] of kt[m]. The
// result is bit-identical to transposing Propagate's output, at a cost of
// one row union per signal instead of one per set knowledge bit — the fast
// form of the recurrence at large P. dst must not alias kt.
func PropagateTInto(dst, kt, s *Bool) {
	if kt.n != s.n || dst.n != kt.n {
		panic(fmt.Sprintf("mat: PropagateTInto dimension mismatch %d/%d/%d", dst.n, kt.n, s.n))
	}
	copy(dst.rows, kt.rows)
	propagateTSpread(dst, kt, s, nil)
}

// PropagateTSilencedInto is PropagateTInto with the rows of silenced ranks
// treated as zero, mirroring PropagateSilencedInto in the transposed
// representation: a silenced rank receives knowledge but never forwards it.
// silent is a bitset over ranks with at least (N+63)/64 words.
func PropagateTSilencedInto(dst, kt, s *Bool, silent []uint64) {
	if kt.n != s.n || dst.n != kt.n {
		panic(fmt.Sprintf("mat: PropagateTSilencedInto dimension mismatch %d/%d/%d", dst.n, kt.n, s.n))
	}
	if len(silent) < (kt.n+wordBits-1)/wordBits {
		panic(fmt.Sprintf("mat: PropagateTSilencedInto silent mask has %d words for %d ranks", len(silent), kt.n))
	}
	copy(dst.rows, kt.rows)
	propagateTSpread(dst, kt, s, silent)
}

func propagateTSpread(dst, kt, s *Bool, silent []uint64) {
	for m := 0; m < s.n; m++ {
		if silent != nil && silent[m/wordBits]&(1<<(uint(m)%wordBits)) != 0 {
			continue
		}
		src := kt.rows[m*kt.words : (m+1)*kt.words]
		base := m * s.words
		for w := 0; w < s.words; w++ {
			word := s.rows[base+w]
			for word != 0 {
				b := trailingZeros(word)
				word &^= 1 << uint(b)
				j := w*wordBits + b
				out := dst.rows[j*dst.words : (j+1)*dst.words]
				for x := range out {
					out[x] |= src[x]
				}
			}
		}
	}
}
