package mat

import (
	"fmt"
	"strings"
)

// Dense is a dense n×n float64 matrix in row-major order. It stores the
// pairwise cost parameters of the topological model (the O and L matrices of
// the paper) and intermediate per-stage cost weightings.
type Dense struct {
	n    int
	data []float64
}

// NewDense returns an n×n zero matrix.
func NewDense(n int) *Dense {
	if n < 0 {
		panic(fmt.Sprintf("mat: NewDense with negative size %d", n))
	}
	return &Dense{n: n, data: make([]float64, n*n)}
}

// DenseFromRows builds a matrix from a slice of row slices.
func DenseFromRows(rows [][]float64) *Dense {
	n := len(rows)
	m := NewDense(n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("mat: DenseFromRows row %d has %d entries, want %d", i, len(r), n))
		}
		copy(m.data[i*n:(i+1)*n], r)
	}
	return m
}

// N returns the dimension of the matrix.
func (m *Dense) N() int { return m.n }

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %d×%d matrix", i, j, m.n, m.n))
	}
}

// At returns entry (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.n+j]
}

// Set assigns entry (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.n+j] = v
}

// Add adds v to entry (i, j).
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.n+j] += v
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.n)
	copy(c.data, m.data)
	return c
}

// Sub returns the principal submatrix of m selected by idx: entry (a, b) of
// the result is m[idx[a]][idx[b]]. It is used to restrict a profile to the
// members of one cluster.
func (m *Dense) Sub(idx []int) *Dense {
	s := NewDense(len(idx))
	for a, i := range idx {
		for b, j := range idx {
			s.Set(a, b, m.At(i, j))
		}
	}
	return s
}

// Symmetrize overwrites m with (m + mᵀ)/2 and returns m. The paper assumes
// link symmetry (Oij == Oji); profiling noise is folded out here.
func (m *Dense) Symmetrize() *Dense {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// MaxOffDiag returns the largest off-diagonal entry, i.e. the diameter of the
// profile viewed as a metric space. It returns 0 for matrices of size < 2.
func (m *Dense) MaxOffDiag() float64 {
	max := 0.0
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i != j && m.At(i, j) > max {
				max = m.At(i, j)
			}
		}
	}
	return max
}

// MinOffDiag returns the smallest off-diagonal entry, or 0 for size < 2.
func (m *Dense) MinOffDiag() float64 {
	first := true
	min := 0.0
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i == j {
				continue
			}
			if first || m.At(i, j) < min {
				min = m.At(i, j)
				first = false
			}
		}
	}
	return min
}

// Scale multiplies every entry by f and returns m.
func (m *Dense) Scale(f float64) *Dense {
	for k := range m.data {
		m.data[k] *= f
	}
	return m
}

// String renders the matrix with %.3g entries; intended for small dumps.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.3g", m.At(i, j))
		}
		if i+1 < m.n {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
