package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDenseSetAt(t *testing.T) {
	m := NewDense(3)
	m.Set(0, 2, 1.5)
	m.Add(0, 2, 0.25)
	if got := m.At(0, 2); got != 1.75 {
		t.Fatalf("At(0,2) = %v, want 1.75", got)
	}
	if m.At(2, 0) != 0 {
		t.Fatalf("untouched entry nonzero")
	}
}

func TestDenseFromRows(t *testing.T) {
	m := DenseFromRows([][]float64{{0, 1}, {2, 0}})
	if m.At(0, 1) != 1 || m.At(1, 0) != 2 {
		t.Fatalf("DenseFromRows entries wrong: %v", m)
	}
}

func TestDenseFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("ragged DenseFromRows did not panic")
		}
	}()
	DenseFromRows([][]float64{{1}, {1, 2}})
}

func TestDenseOutOfRangePanics(t *testing.T) {
	m := NewDense(2)
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-range At did not panic")
		}
	}()
	m.At(2, 0)
}

func TestSub(t *testing.T) {
	m := DenseFromRows([][]float64{
		{0, 1, 2, 3},
		{10, 0, 12, 13},
		{20, 21, 0, 23},
		{30, 31, 32, 0},
	})
	s := m.Sub([]int{1, 3})
	if s.N() != 2 {
		t.Fatalf("Sub size = %d, want 2", s.N())
	}
	if s.At(0, 0) != 0 || s.At(0, 1) != 13 || s.At(1, 0) != 31 || s.At(1, 1) != 0 {
		t.Fatalf("Sub entries wrong:\n%v", s)
	}
}

func TestSymmetrize(t *testing.T) {
	m := DenseFromRows([][]float64{{0, 4}, {2, 0}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize wrong:\n%v", m)
	}
}

func TestMaxMinOffDiag(t *testing.T) {
	m := DenseFromRows([][]float64{
		{99, 2, 5},
		{1, 99, 4},
		{3, 6, 99},
	})
	if got := m.MaxOffDiag(); got != 6 {
		t.Fatalf("MaxOffDiag = %v, want 6 (diagonal must be ignored)", got)
	}
	if got := m.MinOffDiag(); got != 1 {
		t.Fatalf("MinOffDiag = %v, want 1", got)
	}
	if NewDense(1).MaxOffDiag() != 0 {
		t.Fatalf("MaxOffDiag of 1×1 not 0")
	}
}

func TestScaleClone(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone().Scale(2)
	if c.At(1, 1) != 8 || m.At(1, 1) != 4 {
		t.Fatalf("Scale/Clone interaction wrong")
	}
}

// Property: Symmetrize is idempotent and preserves the average of entry pairs.
func TestQuickSymmetrizeIdempotent(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) {
			return true
		}
		m := DenseFromRows([][]float64{{a, b}, {c, d}})
		m.Symmetrize()
		once := m.Clone()
		m.Symmetrize()
		return m.At(0, 1) == once.At(0, 1) && m.At(1, 0) == m.At(0, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDenseString(t *testing.T) {
	m := DenseFromRows([][]float64{{0, 1.5}, {2, 0}})
	want := "0 1.5\n2 0"
	if m.String() != want {
		t.Fatalf("String() = %q, want %q", m.String(), want)
	}
}
