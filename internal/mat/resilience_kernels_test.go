package mat

import "testing"

// maskOf builds a rank bitset from indices.
func maskOf(words int, ranks ...int) []uint64 {
	m := make([]uint64, words)
	for _, r := range ranks {
		m[r/64] |= 1 << (uint(r) % 64)
	}
	return m
}

// TestPropagateSilencedInto: silencing a relay must match Propagate over a
// stage matrix with that rank's row zeroed, for both a small matrix and one
// spanning multiple words.
func TestPropagateSilencedInto(t *testing.T) {
	for _, n := range []int{5, 70} {
		// Ring stage: i signals i+1 mod n.
		s := NewBool(n)
		for i := 0; i < n; i++ {
			s.Set(i, (i+1)%n, true)
		}
		k := Identity(n)
		silent := maskOf(k.WordsPerRow(), 2)

		got := NewBool(n)
		PropagateSilencedInto(got, k, s, silent)

		zeroed := s.Clone()
		for j := 0; j < n; j++ {
			zeroed.Set(2, j, false)
		}
		want := Propagate(k, zeroed)
		if !got.Equal(want) {
			t.Errorf("n=%d: silenced propagate differs from zeroed-row propagate", n)
		}
		// The silenced rank still receives: entry (1, 2) must be set after
		// rank 1's signal to rank 2 lands.
		if !got.At(1, 2) {
			t.Errorf("n=%d: silenced rank stopped receiving", n)
		}
	}
}

// TestRowCoversAllExcept covers the tail-mask edge cases around word
// boundaries.
func TestRowCoversAllExcept(t *testing.T) {
	for _, n := range []int{3, 64, 65, 130} {
		m := NewBool(n)
		for j := 0; j < n; j++ {
			m.Set(0, j, true)
		}
		w := m.WordsPerRow()
		if !m.RowCoversAllExcept(0, maskOf(w)) {
			t.Errorf("n=%d: full row should cover all with empty exclusion", n)
		}
		m.Set(0, n-1, false)
		if m.RowCoversAllExcept(0, maskOf(w)) {
			t.Errorf("n=%d: hole at %d not detected", n, n-1)
		}
		if !m.RowCoversAllExcept(0, maskOf(w, n-1)) {
			t.Errorf("n=%d: excluded hole at %d should pass", n, n-1)
		}
		// Excluding an unrelated rank must not mask the hole.
		if n > 3 && m.RowCoversAllExcept(0, maskOf(w, 1)) {
			t.Errorf("n=%d: exclusion of rank 1 masked hole at %d", n, n-1)
		}
	}
}

// TestReachableFrom: BFS closure over a path graph, with and without a
// silenced cut vertex.
func TestReachableFrom(t *testing.T) {
	n := 70 // spans two words
	m := NewBool(n)
	for i := 0; i+1 < n; i++ {
		m.Set(i, i+1, true)
	}
	w := m.WordsPerRow()

	seed := maskOf(w, 0)
	m.ReachableFrom(seed, nil)
	for j := 0; j < n; j++ {
		if seed[j/64]&(1<<(uint(j)%64)) == 0 {
			t.Fatalf("rank %d unreachable on an unbroken path", j)
		}
	}

	// Silencing rank 40 cuts the path: nothing past it is reachable, and
	// rank 40 itself is still reached (silence stops forwarding, not
	// receipt).
	seed = maskOf(w, 0)
	m.ReachableFrom(seed, maskOf(w, 40))
	for j := 0; j <= 40; j++ {
		if seed[j/64]&(1<<(uint(j)%64)) == 0 {
			t.Errorf("rank %d should be reachable up to the cut", j)
		}
	}
	for j := 41; j < n; j++ {
		if seed[j/64]&(1<<(uint(j)%64)) != 0 {
			t.Errorf("rank %d reachable across silenced cut vertex", j)
		}
	}
}
