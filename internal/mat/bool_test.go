package mat

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewBoolStartsEmpty(t *testing.T) {
	m := NewBool(7)
	if m.N() != 7 {
		t.Fatalf("N() = %d, want 7", m.N())
	}
	if !m.IsZero() {
		t.Fatalf("new matrix is not zero")
	}
	if m.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", m.Count())
	}
}

func TestBoolSetAtRoundTrip(t *testing.T) {
	m := NewBool(70) // spans two words per row
	coords := [][2]int{{0, 0}, {0, 63}, {0, 64}, {3, 69}, {69, 0}, {42, 42}}
	for _, c := range coords {
		m.Set(c[0], c[1], true)
	}
	for _, c := range coords {
		if !m.At(c[0], c[1]) {
			t.Errorf("At(%d,%d) = false after Set", c[0], c[1])
		}
	}
	if m.Count() != len(coords) {
		t.Fatalf("Count() = %d, want %d", m.Count(), len(coords))
	}
	m.Set(0, 64, false)
	if m.At(0, 64) {
		t.Fatalf("At(0,64) still true after clearing")
	}
	if m.Count() != len(coords)-1 {
		t.Fatalf("Count() = %d after clear, want %d", m.Count(), len(coords)-1)
	}
}

func TestBoolOutOfRangePanics(t *testing.T) {
	m := NewBool(4)
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {4, 0}, {0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", c[0], c[1])
				}
			}()
			m.At(c[0], c[1])
		}()
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != (i == j) {
				t.Fatalf("Identity At(%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestRowAndCol(t *testing.T) {
	m := NewBool(66)
	m.Set(1, 0, true)
	m.Set(1, 64, true)
	m.Set(1, 65, true)
	m.Set(5, 64, true)
	got := m.Row(1)
	want := []int{0, 64, 65}
	if len(got) != len(want) {
		t.Fatalf("Row(1) = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Row(1) = %v, want %v", got, want)
		}
	}
	col := m.Col(64)
	if len(col) != 2 || col[0] != 1 || col[1] != 5 {
		t.Fatalf("Col(64) = %v, want [1 5]", col)
	}
	if r := m.Row(0); len(r) != 0 {
		t.Fatalf("Row(0) = %v, want empty", r)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := BoolFromRows([][]bool{
		{false, true, false},
		{false, false, true},
		{true, false, false},
	})
	tt := m.T().T()
	if !tt.Equal(m) {
		t.Fatalf("double transpose differs:\n%v\nvs\n%v", tt, m)
	}
	tr := m.T()
	if !tr.At(1, 0) || !tr.At(2, 1) || !tr.At(0, 2) {
		t.Fatalf("transpose entries wrong:\n%v", tr)
	}
}

func TestMulMatchesNaive(t *testing.T) {
	a := BoolFromRows([][]bool{
		{true, false, true, false},
		{false, false, false, false},
		{false, true, false, true},
		{true, true, true, true},
	})
	b := BoolFromRows([][]bool{
		{false, true, false, false},
		{true, false, false, false},
		{false, false, false, true},
		{false, false, true, false},
	})
	got := a.Mul(b)
	n := a.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := false
			for k := 0; k < n; k++ {
				if a.At(i, k) && b.At(k, j) {
					want = true
				}
			}
			if got.At(i, j) != want {
				t.Fatalf("Mul At(%d,%d) = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	m := NewBool(9)
	m.Set(0, 8, true)
	m.Set(4, 4, true)
	m.Set(7, 2, true)
	id := Identity(9)
	if !m.Mul(id).Equal(m) {
		t.Fatalf("m·I != m")
	}
	if !id.Mul(m).Equal(m) {
		t.Fatalf("I·m != m")
	}
}

func TestOrAndClone(t *testing.T) {
	a := NewBool(3)
	a.Set(0, 1, true)
	b := NewBool(3)
	b.Set(2, 2, true)
	c := a.Clone()
	c.Or(b)
	if !c.At(0, 1) || !c.At(2, 2) {
		t.Fatalf("Or missing entries:\n%v", c)
	}
	if a.At(2, 2) {
		t.Fatalf("Or mutated the clone source")
	}
}

func TestPropagateLinearBarrierKnowledge(t *testing.T) {
	// The 4-rank linear barrier of the paper's Figure 2: ranks 1..3 signal
	// rank 0, then rank 0 signals everyone (transpose). After both stages all
	// knowledge entries must be set (Eq. 3 barrier condition).
	s0 := NewBool(4)
	for i := 1; i < 4; i++ {
		s0.Set(i, 0, true)
	}
	s1 := s0.T()
	k := Propagate(Identity(4), s0)
	// After stage 0, rank 0 knows all arrivals.
	for i := 0; i < 4; i++ {
		if !k.At(i, 0) {
			t.Fatalf("rank 0 does not know arrival of %d after stage 0:\n%v", i, k)
		}
	}
	if k.AllSet() {
		t.Fatalf("knowledge complete after arrival stage only")
	}
	k = Propagate(k, s1)
	if !k.AllSet() {
		t.Fatalf("linear barrier knowledge incomplete:\n%v", k)
	}
}

func TestPropagateWithoutSignalsIsNoop(t *testing.T) {
	k := Identity(6)
	k2 := Propagate(k, NewBool(6))
	if !k2.Equal(k) {
		t.Fatalf("propagating the zero stage changed knowledge")
	}
}

func TestAllSet(t *testing.T) {
	m := NewBool(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, true)
		}
	}
	if !m.AllSet() {
		t.Fatalf("full matrix not AllSet")
	}
	m.Set(1, 2, false)
	if m.AllSet() {
		t.Fatalf("matrix with hole reported AllSet")
	}
}

func TestBoolString(t *testing.T) {
	m := NewBool(2)
	m.Set(0, 1, true)
	want := "0 1\n0 0"
	if m.String() != want {
		t.Fatalf("String() = %q, want %q", m.String(), want)
	}
}

func TestBoolFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("ragged BoolFromRows did not panic")
		}
	}()
	BoolFromRows([][]bool{{true}, {true, false}})
}

// Property: transpose preserves the entry count, and (A·B)ᵀ == Bᵀ·Aᵀ.
func TestQuickTransposeProductLaw(t *testing.T) {
	f := func(seed uint32) bool {
		a := randBool(int(seed%5)+2, uint64(seed)*2654435761+1)
		b := randBool(a.N(), uint64(seed)*0x9e3779b97f4a7c15+7)
		left := a.Mul(b).T()
		right := b.T().Mul(a.T())
		return left.Equal(right) && a.T().Count() == a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Propagate is monotone (never clears knowledge) and idempotent on
// a saturated matrix.
func TestQuickPropagateMonotone(t *testing.T) {
	f := func(seed uint32) bool {
		n := int(seed%6) + 2
		s := randBool(n, uint64(seed)+3)
		k := Identity(n)
		next := Propagate(k, s)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if k.At(i, j) && !next.At(i, j) {
					return false
				}
			}
		}
		full := NewBool(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				full.Set(i, j, true)
			}
		}
		return Propagate(full, s).Equal(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randBool(n int, seed uint64) *Bool {
	m := NewBool(n)
	x := seed
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if x&3 == 0 {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

func TestPopcountTrailingZeros(t *testing.T) {
	if popcount(0) != 0 || popcount(^uint64(0)) != 64 || popcount(0b1011) != 3 {
		t.Fatalf("popcount wrong")
	}
	if trailingZeros(0) != 64 || trailingZeros(1) != 0 || trailingZeros(0b1000) != 3 {
		t.Fatalf("trailingZeros wrong")
	}
}

func BenchmarkPropagate64(b *testing.B) {
	s := randBool(64, 11)
	k := Identity(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k = Propagate(Identity(64), s)
	}
	if k.N() != 64 {
		b.Fatal("unexpected")
	}
}

func BenchmarkBoolMul128(b *testing.B) {
	x := randBool(128, 5)
	y := randBool(128, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

var _ = strings.TrimSpace // keep strings imported if dumps are removed

func TestRowWordsAliasesStorage(t *testing.T) {
	m := NewBool(70) // two words per row
	if m.WordsPerRow() != 2 {
		t.Fatalf("WordsPerRow() = %d, want 2", m.WordsPerRow())
	}
	m.Set(3, 65, true)
	w := m.RowWords(3)
	if len(w) != 2 {
		t.Fatalf("RowWords length %d, want 2", len(w))
	}
	if w[1]&(1<<1) == 0 {
		t.Fatalf("bit 65 not visible through RowWords")
	}
	// Writes through the view mutate the matrix.
	w[0] |= 1 << 7
	if !m.At(3, 7) {
		t.Fatalf("write through RowWords not visible via At")
	}
}

func TestOrRowInto(t *testing.T) {
	m := NewBool(70)
	m.Set(1, 0, true)
	m.Set(1, 69, true)
	dst := make([]uint64, m.WordsPerRow())
	dst[0] = 1 << 5
	m.OrRowInto(1, dst)
	want := NewBool(70)
	want.Set(0, 0, true)
	want.Set(0, 5, true)
	want.Set(0, 69, true)
	for w := range dst {
		if dst[w] != want.RowWords(0)[w] {
			t.Fatalf("OrRowInto word %d = %#x, want %#x", w, dst[w], want.RowWords(0)[w])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("OrRowInto accepted a short dst")
		}
	}()
	m.OrRowInto(1, dst[:1])
}

func TestRowEqual(t *testing.T) {
	a := randBool(70, 1)
	b := a.Clone()
	for i := 0; i < 70; i++ {
		if !a.RowEqual(i, b, i) {
			t.Fatalf("clone row %d not equal", i)
		}
	}
	b.Set(4, 66, !b.At(4, 66))
	if a.RowEqual(4, b, 4) {
		t.Fatalf("differing rows reported equal")
	}
	if a.RowEqual(5, b, 5) != true {
		t.Fatalf("untouched row affected")
	}
	if a.RowEqual(0, NewBool(3), 0) {
		t.Fatalf("dimension mismatch reported equal")
	}
}

func TestEqualFastPaths(t *testing.T) {
	a := randBool(40, 7)
	if !a.Equal(a) {
		t.Fatalf("matrix not equal to itself")
	}
	if !a.Equal(a.Clone()) {
		t.Fatalf("Equal(clone) failed")
	}
	if a.Equal(NewBool(40)) {
		t.Fatalf("non-empty matrix equal to empty")
	}
}

func TestCopyFrom(t *testing.T) {
	a := randBool(33, 9)
	b := NewBool(33)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatalf("CopyFrom did not copy")
	}
	b.Set(0, 1, !b.At(0, 1))
	if b.Equal(a) {
		t.Fatalf("CopyFrom aliased storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("CopyFrom accepted dimension mismatch")
		}
	}()
	b.CopyFrom(NewBool(2))
}

func TestPropagateIntoMatchesPropagate(t *testing.T) {
	f := func(seed uint32) bool {
		n := int(seed%9) + 2
		s := randBool(n, uint64(seed)+5)
		k := randBool(n, uint64(seed)*3+1)
		k.Or(Identity(n))
		dst := NewBool(n)
		PropagateInto(dst, k, s)
		return dst.Equal(Propagate(k, s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Sizes spanning multiple words per row.
	s := randBool(130, 2)
	k := Identity(130)
	dst := NewBool(130)
	PropagateInto(dst, k, s)
	if !dst.Equal(Propagate(k, s)) {
		t.Fatalf("PropagateInto diverges from Propagate at n=130")
	}
}

func TestTrailingZerosExhaustive(t *testing.T) {
	for b := 0; b < 64; b++ {
		if got := trailingZeros(1 << uint(b)); got != b {
			t.Fatalf("trailingZeros(1<<%d) = %d", b, got)
		}
		if got := trailingZeros((1 << uint(b)) | (1 << 63)); got != b {
			t.Fatalf("trailingZeros with high bit, bit %d: %d", b, got)
		}
	}
}
