package mat

import (
	"math/rand"
	"testing"
)

// refRow is a map-based reference set for HybridRow property testing.
type refRow map[int]bool

// TestHybridRowPropertyRandomOps drives a HybridRow through random Add/OrRow
// sequences across the sparse→dense transition and checks every observable
// against a map-based reference.
func TestHybridRowPropertyRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 7, 63, 64, 65, 200, 512} {
		for trial := 0; trial < 20; trial++ {
			r := NewHybridRow(n)
			ref := refRow{}
			for op := 0; op < 120; op++ {
				switch rng.Intn(3) {
				case 0:
					j := rng.Intn(n)
					grew := r.Add(j)
					if grew == ref[j] {
						t.Fatalf("n=%d Add(%d) grew=%v but ref had %v", n, j, grew, ref[j])
					}
					ref[j] = true
				case 1:
					o := NewHybridRow(n)
					oref := refRow{}
					for k := rng.Intn(n); k > 0; k-- {
						j := rng.Intn(n)
						o.Add(j)
						oref[j] = true
					}
					wantSub := true
					for j := range oref {
						if !ref[j] {
							wantSub = false
						}
					}
					if got := o.SubsetOf(r); got != wantSub {
						t.Fatalf("n=%d SubsetOf=%v want %v", n, got, wantSub)
					}
					grew := r.OrRow(o)
					if grew == wantSub {
						t.Fatalf("n=%d OrRow grew=%v but subset was %v", n, grew, wantSub)
					}
					for j := range oref {
						ref[j] = true
					}
				case 2:
					c := r.Clone()
					j := rng.Intn(n)
					c.Add(j)
					if !ref[j] && r.Contains(j) {
						t.Fatalf("n=%d Clone aliases parent storage", n)
					}
				}
				if r.Count() != len(ref) {
					t.Fatalf("n=%d Count=%d want %d (dense=%v)", n, r.Count(), len(ref), r.IsDense())
				}
				if r.Full() != (len(ref) == n) {
					t.Fatalf("n=%d Full=%v want %v", n, r.Full(), len(ref) == n)
				}
				for j := 0; j < n; j++ {
					if r.Contains(j) != ref[j] {
						t.Fatalf("n=%d Contains(%d)=%v want %v", n, j, r.Contains(j), ref[j])
					}
				}
			}
			got := r.Indices(nil)
			if len(got) != len(ref) {
				t.Fatalf("n=%d Indices len %d want %d", n, len(got), len(ref))
			}
			for i := 1; i < len(got); i++ {
				if got[i-1] >= got[i] {
					t.Fatalf("n=%d Indices not strictly increasing: %v", n, got)
				}
			}
		}
	}
}

func TestHybridRowOrWords(t *testing.T) {
	r := NewHybridRow(130)
	r.Add(3)
	src := make([]uint64, 3)
	src[0] = 1<<3 | 1<<40
	src[2] = 1 << 1 // column 129
	if !r.OrWords(src) {
		t.Fatal("OrWords should report growth")
	}
	if r.OrWords(src) {
		t.Fatal("second OrWords should be a no-op")
	}
	for _, j := range []int{3, 40, 129} {
		if !r.Contains(j) {
			t.Fatalf("missing column %d", j)
		}
	}
	if r.Count() != 3 {
		t.Fatalf("Count=%d want 3", r.Count())
	}
}

// randomStages builds a random schedule-shaped stage sequence; density
// sweeps from sparse to heavy so closures both succeed and fail.
func randomStages(rng *rand.Rand, p, stages int, density float64) []*Bool {
	out := make([]*Bool, stages)
	for k := range out {
		s := NewBool(p)
		signals := int(density * float64(p))
		if signals < 1 {
			signals = 1
		}
		for c := 0; c < signals; c++ {
			s.Set(rng.Intn(p), rng.Intn(p), true)
		}
		out[k] = s
	}
	return out
}

func denseClosure(p int, stages []*Bool) bool {
	k := Identity(p)
	for _, s := range stages {
		k = Propagate(k, s)
	}
	return k.AllSet()
}

// TestFrontierClosureBitIdenticalToDense is the tentpole property test:
// over random schedules up to P=256, the sparse-frontier closure verdict
// must match the dense Propagate/AllSet path exactly.
func TestFrontierClosureBitIdenticalToDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1109))
	sizes := []int{1, 2, 3, 5, 8, 13, 31, 64, 65, 127, 256}
	closed, open := 0, 0
	for _, p := range sizes {
		trials := 40
		if p > 60 {
			trials = 8
		}
		for trial := 0; trial < trials; trial++ {
			stages := 1 + rng.Intn(6)
			density := []float64{0.3, 1, 2, 5}[rng.Intn(4)]
			ss := randomStages(rng, p, stages, density)
			want := denseClosure(p, ss)
			if got := FrontierClosure(p, ss); got != want {
				t.Fatalf("P=%d trial=%d: FrontierClosure=%v dense=%v", p, trial, got, want)
			}
			if want {
				closed++
			} else {
				open++
			}
		}
	}
	if closed == 0 || open == 0 {
		t.Fatalf("degenerate sweep: %d closed, %d open — adjust densities", closed, open)
	}
}

// TestFrontierClosureDissemination pins the classic closures: dissemination
// closes in ceil(log2 P) stages and fails with one stage fewer.
func TestFrontierClosureDissemination(t *testing.T) {
	for _, p := range []int{2, 3, 8, 16, 33, 128} {
		var stages []*Bool
		for d := 1; d < p; d *= 2 {
			s := NewBool(p)
			for i := 0; i < p; i++ {
				s.Set(i, (i+d)%p, true)
			}
			stages = append(stages, s)
		}
		if !FrontierClosure(p, stages) {
			t.Fatalf("P=%d dissemination should close", p)
		}
		if p > 2 && FrontierClosure(p, stages[:len(stages)-1]) {
			t.Fatalf("P=%d truncated dissemination should not close", p)
		}
	}
}

// TestPropagateTMatchesDense checks the transposed step against Propagate on
// random knowledge/stage pairs, with and without silenced ranks.
func TestPropagateTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []int{1, 5, 17, 64, 90} {
		for trial := 0; trial < 12; trial++ {
			k := Identity(p)
			s := NewBool(p)
			for c := 0; c < 3*p; c++ {
				k.Set(rng.Intn(p), rng.Intn(p), true)
				if rng.Intn(2) == 0 {
					s.Set(rng.Intn(p), rng.Intn(p), true)
				}
			}
			silent := make([]uint64, (p+63)/64)
			for i := 0; i < p; i++ {
				if rng.Intn(5) == 0 {
					silent[i/64] |= 1 << (uint(i) % 64)
				}
			}

			kt := k.T()
			dst := NewBool(p)
			PropagateTInto(dst, kt, s)
			if want := Propagate(k, s).T(); !dst.Equal(want) {
				t.Fatalf("P=%d PropagateTInto mismatch", p)
			}

			dstS := NewBool(p)
			PropagateTSilencedInto(dstS, kt, s, silent)
			wantS := NewBool(p)
			PropagateSilencedInto(wantS, k, s, silent)
			if !dstS.Equal(wantS.T()) {
				t.Fatalf("P=%d PropagateTSilencedInto mismatch", p)
			}
		}
	}
}
