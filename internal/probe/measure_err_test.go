package probe

import (
	"strings"
	"testing"

	"topobarrier/internal/mpi"
)

// TestMeasureAggregatesPairErrors pins the error-reporting contract: when
// several pairs fail, Measure names every one of them in a joined error
// instead of surfacing only whichever failed last.
func TestMeasureAggregatesPairErrors(t *testing.T) {
	// Identical size points make the O least-squares fit degenerate for every
	// pair, so all three pairs of a 3-rank world fail.
	cfg := Default()
	cfg.Sizes = []int{4, 4}
	_, err := Measure(mpi.NewWorld(quietFabric(t, 3)), cfg)
	if err == nil {
		t.Fatal("degenerate size sweep produced a profile")
	}
	for _, want := range []string{"pair (0,1)", "pair (0,2)", "pair (1,2)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error missing %q:\n%v", want, err)
		}
	}
}

// TestMeasureDirectedAggregatesPairErrors is the same contract for the
// directed profiler, which enumerates ordered pairs.
func TestMeasureDirectedAggregatesPairErrors(t *testing.T) {
	cfg := Default()
	cfg.Sizes = []int{4, 4}
	_, err := MeasureDirected(mpi.NewWorld(quietFabric(t, 2)), cfg)
	if err == nil {
		t.Fatal("degenerate size sweep produced a directed profile")
	}
	for _, want := range []string{"pair 0→1", "pair 1→0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error missing %q:\n%v", want, err)
		}
	}
}
