// Package probe collects the topological profile of a platform by running
// the paper's microbenchmark protocol (§IV.A) against the simulated runtime:
//
//   - Oij (i ≠ j): repeated round trips of messages of growing size; the
//     intercept of a least-squares fit over size, halved (link symmetry),
//     estimates the per-message startup overhead. As in any ping-pong
//     estimator the raw intercept also contains one batch-marginal term, so
//     the fitted Lij is subtracted.
//   - Lij: a growing number of simultaneous zero-payload messages from i to
//     j; the gradient of a least-squares fit over batch size estimates the
//     marginal cost of one more message in a batch.
//   - Oii: the mean cost of initiating communication requests that cause no
//     transmission.
//
// Ranks pace each other with untimed handshakes, so concurrent progress on
// disjoint pairs never contaminates a timed region. Every sample is a virtual
// time difference observed through Comm.Wtime, exactly as a wall-clock
// benchmark would observe MPI_Wtime.
//
// The optional Replicate mode implements the reduction the paper describes
// in §IV.B: it measures one representative pair per interconnect link class
// and replicates the result across all structurally identical pairs. It uses
// only a-priori structural knowledge (the machine spec and placement), never
// the fabric's cost parameters.
package probe

import (
	"errors"
	"fmt"

	"topobarrier/internal/mpi"
	"topobarrier/internal/profile"
	"topobarrier/internal/stats"
	"topobarrier/internal/topo"
)

// Config controls the benchmark protocol.
type Config struct {
	// Sizes are the message sizes (bytes) of the Oij round-trip sweep.
	Sizes []int
	// Batches are the batch sizes of the Lij simultaneous-send sweep.
	Batches []int
	// Reps is the number of timed repetitions averaged per sample point.
	Reps int
	// Warmup is the number of untimed repetitions preceding each sample.
	Warmup int
	// Replicate measures one pair per link class instead of all pairs.
	Replicate bool
}

// Default returns a light-weight configuration suitable for simulation runs:
// fewer, smaller sizes than the paper's hardware protocol, which keeps full
// profiles fast while recovering the same parameters.
func Default() Config {
	return Config{
		Sizes:   []int{1, 4, 16, 64, 256, 1024, 4096},
		Batches: []int{1, 2, 4, 8, 16, 32},
		Reps:    5,
		Warmup:  2,
	}
}

// Paper returns the paper's exact protocol: sizes 2^0..2^20, batches 1..32,
// 25 repetitions per sample.
func Paper() Config {
	cfg := Config{Reps: 25, Warmup: 3}
	for e := 0; e <= 20; e++ {
		cfg.Sizes = append(cfg.Sizes, 1<<uint(e))
	}
	for m := 1; m <= 32; m++ {
		cfg.Batches = append(cfg.Batches, m)
	}
	return cfg
}

// Key renders the measurement-relevant configuration as a stable string for
// profile cache fingerprints: two configs with equal keys produce
// interchangeable profiles on the same platform.
func (cfg Config) Key() string {
	return fmt.Sprintf("sizes=%v,batches=%v,reps=%d,warmup=%d,replicate=%v",
		cfg.Sizes, cfg.Batches, cfg.Reps, cfg.Warmup, cfg.Replicate)
}

func (cfg Config) validate(p int) error {
	if len(cfg.Sizes) < 2 {
		return fmt.Errorf("probe: need at least 2 message sizes, have %d", len(cfg.Sizes))
	}
	if len(cfg.Batches) < 2 {
		return fmt.Errorf("probe: need at least 2 batch sizes, have %d", len(cfg.Batches))
	}
	if cfg.Reps < 1 {
		return fmt.Errorf("probe: non-positive repetition count %d", cfg.Reps)
	}
	if cfg.Warmup < 0 {
		return fmt.Errorf("probe: negative warmup %d", cfg.Warmup)
	}
	if p < 2 {
		return fmt.Errorf("probe: profiling needs at least 2 ranks, have %d", p)
	}
	return nil
}

type pair struct {
	i, j  int // i < j; rank i initiates and records
	class topo.LinkClass
}

// Measure profiles the world's platform and returns its topological model.
// The profile is symmetric by construction (the paper's assumption that
// round-trip cost is twice one-way cost).
//
// Pairs are scheduled as edge-colored tournament rounds (Rounds): within a
// round every rank sits in at most one pair, and the pairs — already on
// disjoint tag spaces — now also overlap in (virtual) time, collapsing the
// O(P²) sequential pairwise blocks into ~P concurrent rounds. Disjoint pairs
// use disjoint links, and per-link noise streams are keyed by (seed, link,
// call index), so the overlap changes wall/virtual clock only, never the
// measured values.
func Measure(w *mpi.World, cfg Config) (*profile.Profile, error) {
	p := w.Size()
	if err := cfg.validate(p); err != nil {
		return nil, err
	}
	fab := w.Fabric()

	// Enumerate the unordered pairs to measure in tournament-round order;
	// the Replicate filter keeps only the first pair of each link class.
	var pairs []pair
	rounds := Rounds(p)
	sel := make(map[Pair]int, p*(p-1)/2) // scheduled pair → index into pairs
	classRep := make(map[topo.LinkClass]bool)
	for _, round := range rounds {
		for _, pr := range round {
			cl := fab.Class(pr.I, pr.J)
			if cfg.Replicate {
				if classRep[cl] {
					continue
				}
				classRep[cl] = true
			}
			sel[pr] = len(pairs)
			pairs = append(pairs, pair{i: pr.I, j: pr.J, class: cl})
		}
	}

	oPair := make([]float64, len(pairs))
	lPair := make([]float64, len(pairs))
	pairErr := make([]error, len(pairs))
	oii := make([]float64, p)
	sizeXs := make([]float64, len(cfg.Sizes))
	for k, s := range cfg.Sizes {
		sizeXs[k] = float64(s)
	}
	batchXs := make([]float64, len(cfg.Batches))
	for k, m := range cfg.Batches {
		batchXs[k] = float64(m)
	}

	if _, err := w.Run(func(c *mpi.Comm) {
		me := c.Rank()
		for _, round := range rounds {
			pr, ok := roundOf(round, me)
			if !ok {
				continue // bye round
			}
			pi, ok := sel[pr]
			if !ok {
				continue // filtered out by Replicate
			}
			tag := (pr.I*p + pr.J) * 8 // disjoint tag space per pair
			if pr.I == me {
				l, o, err := measureInitiator(c, pr.J, tag, cfg, sizeXs, batchXs)
				if err != nil {
					// Record and keep going: the protocol for this pair has
					// already completed (fits fail after the sweeps), so
					// staying in the round schedule keeps every later
					// handshake aligned.
					pairErr[pi] = fmt.Errorf("probe: pair (%d,%d): %w", pr.I, pr.J, err)
					continue
				}
				lPair[pi], oPair[pi] = l, o
			} else {
				measureResponder(c, pr.I, tag, cfg)
			}
		}
		// Oii: mean of no-op initiation costs (every rank, measured locally).
		samples := make([]float64, 0, cfg.Reps)
		for r := 0; r < cfg.Warmup+cfg.Reps; r++ {
			t0 := c.Wtime()
			c.NoopInitiate()
			if r >= cfg.Warmup {
				samples = append(samples, c.Wtime()-t0)
			}
		}
		oii[me] = stats.Mean(samples)
	}); err != nil {
		return nil, err
	}
	// Aggregate every failed pair by name rather than keeping only the last
	// error: a multi-pair failure names all of them at once.
	if err := errors.Join(pairErr...); err != nil {
		return nil, err
	}

	// Assemble the profile, replicating class representatives if requested.
	pf := profile.New(fab.Spec().Name, p)
	byClass := make(map[topo.LinkClass][2]float64)
	for pi, pr := range pairs {
		byClass[pr.class] = [2]float64{oPair[pi], lPair[pi]}
		pf.O.Set(pr.i, pr.j, oPair[pi])
		pf.O.Set(pr.j, pr.i, oPair[pi])
		pf.L.Set(pr.i, pr.j, lPair[pi])
		pf.L.Set(pr.j, pr.i, lPair[pi])
	}
	if cfg.Replicate {
		meanOii := stats.Mean(oii)
		for i := 0; i < p; i++ {
			oii[i] = meanOii
			for j := i + 1; j < p; j++ {
				v, ok := byClass[fab.Class(i, j)]
				if !ok {
					return nil, fmt.Errorf("probe: no representative for class %v", fab.Class(i, j))
				}
				pf.O.Set(i, j, v[0])
				pf.O.Set(j, i, v[0])
				pf.L.Set(i, j, v[1])
				pf.L.Set(j, i, v[1])
			}
		}
	}
	for i := 0; i < p; i++ {
		pf.O.Set(i, i, oii[i])
	}
	if err := pf.Validate(); err != nil {
		return nil, err
	}
	return pf, nil
}

// floor keeps fitted parameters physically meaningful when noise produces a
// slightly negative intercept or gradient.
const floor = 1e-9

// measureInitiator runs both sweeps from the initiating side and returns the
// fitted (L, O) estimates for the pair.
func measureInitiator(c *mpi.Comm, peer, tag int, cfg Config, sizeXs, batchXs []float64) (l, o float64, err error) {
	handshake(c, peer, tag, true)

	// L sweep first: the fitted gradient corrects the O intercept below.
	batchMeans := make([]float64, len(cfg.Batches))
	for bi, m := range cfg.Batches {
		samples := make([]float64, 0, cfg.Reps)
		for r := 0; r < cfg.Warmup+cfg.Reps; r++ {
			t0 := c.Wtime()
			reqs := make([]*mpi.Request, m)
			for k := 0; k < m; k++ {
				reqs[k] = c.Issend(peer, tag+1, 0)
			}
			c.Wait(reqs...)
			t1 := c.Wtime()
			c.Recv(peer, tag+2) // untimed ack keeps reps in lockstep
			if r >= cfg.Warmup {
				samples = append(samples, t1-t0)
			}
		}
		batchMeans[bi] = stats.Mean(samples)
	}
	lFit, err := stats.LeastSquares(batchXs, batchMeans)
	if err != nil {
		return 0, 0, fmt.Errorf("probe: L fit for pair (%d,%d): %w", c.Rank(), peer, err)
	}
	l = lFit.Slope
	if l < floor {
		l = floor
	}

	// O sweep: round trips over growing sizes; intercept/2 minus L.
	sizeMeans := make([]float64, len(cfg.Sizes))
	for si, s := range cfg.Sizes {
		samples := make([]float64, 0, cfg.Reps)
		for r := 0; r < cfg.Warmup+cfg.Reps; r++ {
			t0 := c.Wtime()
			c.Send(peer, tag+3, s)
			c.Recv(peer, tag+4)
			t1 := c.Wtime()
			if r >= cfg.Warmup {
				samples = append(samples, t1-t0)
			}
		}
		sizeMeans[si] = stats.Mean(samples)
	}
	oFit, err := stats.LeastSquares(sizeXs, sizeMeans)
	if err != nil {
		return 0, 0, fmt.Errorf("probe: O fit for pair (%d,%d): %w", c.Rank(), peer, err)
	}
	o = oFit.Intercept/2 - l
	if o < floor {
		o = floor
	}
	return l, o, nil
}

// measureResponder mirrors measureInitiator on the passive side.
func measureResponder(c *mpi.Comm, peer, tag int, cfg Config) {
	handshake(c, peer, tag, false)
	for _, m := range cfg.Batches {
		for r := 0; r < cfg.Warmup+cfg.Reps; r++ {
			reqs := make([]*mpi.Request, m)
			for k := 0; k < m; k++ {
				reqs[k] = c.Irecv(peer, tag+1)
			}
			c.Wait(reqs...)
			c.Send(peer, tag+2, 0)
		}
	}
	for _, s := range cfg.Sizes {
		for r := 0; r < cfg.Warmup+cfg.Reps; r++ {
			c.Recv(peer, tag+3)
			c.Send(peer, tag+4, s)
		}
	}
}

// handshake aligns the two ranks of a pair before timed work begins.
func handshake(c *mpi.Comm, peer, tag int, initiator bool) {
	if initiator {
		c.Send(peer, tag, 0)
		c.Recv(peer, tag)
	} else {
		c.Recv(peer, tag)
		c.Send(peer, tag, 0)
	}
}
