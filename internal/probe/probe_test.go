package probe

import (
	"math"
	"testing"
	"testing/quick"

	"topobarrier/internal/fabric"
	"topobarrier/internal/mpi"
	"topobarrier/internal/stats"
	"topobarrier/internal/topo"
)

// quietFabric returns a noise-free two-node machine with known parameters.
func quietFabric(t testing.TB, p int) *fabric.Fabric {
	t.Helper()
	spec := topo.Spec{Name: "probe-test", Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 4}
	params := fabric.Params{
		Classes: map[topo.LinkClass]fabric.Link{
			topo.SameSocket: {Alpha: 10e-6, Beta: 1e-9, Lambda: 2e-6},
			topo.CrossNode:  {Alpha: 50e-6, Beta: 8e-9, Lambda: 8e-6},
		},
		SelfOverhead: 1e-6,
	}
	f, err := fabric.New(spec, topo.Block{}, p, params)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMeasureRecoversQuietParameters(t *testing.T) {
	f := quietFabric(t, 6)
	pf, err := Measure(mpi.NewWorld(f), Default())
	if err != nil {
		t.Fatal(err)
	}
	if pf.P != 6 {
		t.Fatalf("profile P = %d", pf.P)
	}
	relErr := func(got, want float64) float64 { return math.Abs(got-want) / want }
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				if relErr(pf.O.At(i, i), 1e-6) > 0.02 {
					t.Errorf("Oii[%d] = %g, want ~1µs", i, pf.O.At(i, i))
				}
				continue
			}
			if e := relErr(pf.O.At(i, j), f.TrueO(i, j)); e > 0.05 {
				t.Errorf("O[%d][%d] = %g, want %g (err %.1f%%)", i, j, pf.O.At(i, j), f.TrueO(i, j), 100*e)
			}
			if e := relErr(pf.L.At(i, j), f.TrueL(i, j)); e > 0.05 {
				t.Errorf("L[%d][%d] = %g, want %g (err %.1f%%)", i, j, pf.L.At(i, j), f.TrueL(i, j), 100*e)
			}
		}
	}
}

func TestMeasureSymmetricByConstruction(t *testing.T) {
	pf, err := Measure(mpi.NewWorld(quietFabric(t, 5)), Default())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pf.P; i++ {
		for j := 0; j < pf.P; j++ {
			if pf.O.At(i, j) != pf.O.At(j, i) || pf.L.At(i, j) != pf.L.At(j, i) {
				t.Fatalf("asymmetric profile at (%d,%d)", i, j)
			}
		}
	}
}

func TestMeasureWithNoiseStaysInBand(t *testing.T) {
	spec := topo.Spec{Name: "noisy", Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 3}
	params := fabric.Params{
		Classes: map[topo.LinkClass]fabric.Link{
			topo.SameSocket: {Alpha: 10e-6, Beta: 1e-9, Lambda: 2e-6, Sigma: 0.08},
			topo.CrossNode:  {Alpha: 50e-6, Beta: 8e-9, Lambda: 8e-6, Sigma: 0.12},
		},
		SelfOverhead: 1e-6,
		SelfSigma:    0.05,
		Seed:         99,
	}
	f, err := fabric.New(spec, topo.Block{}, 6, params)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Measure(mpi.NewWorld(f), Default())
	if err != nil {
		t.Fatal(err)
	}
	// Noise allows individual error, but the profile must still cleanly
	// separate the two link classes — the property the tuner depends on.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			o := pf.O.At(i, j)
			if f.Class(i, j) == topo.CrossNode {
				if o < 30e-6 || o > 80e-6 {
					t.Errorf("cross-node O[%d][%d] = %g out of band", i, j, o)
				}
			} else if o > 20e-6 {
				t.Errorf("local O[%d][%d] = %g out of band", i, j, o)
			}
		}
	}
}

func TestReplicateMatchesFullOnUniformFabric(t *testing.T) {
	full, err := Measure(mpi.NewWorld(quietFabric(t, 6)), Default())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Replicate = true
	rep, err := Measure(mpi.NewWorld(quietFabric(t, 6)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			d := math.Abs(full.O.At(i, j) - rep.O.At(i, j))
			if d > 0.05*full.O.At(i, j) {
				t.Errorf("replicated O[%d][%d] = %g, full = %g", i, j, rep.O.At(i, j), full.O.At(i, j))
			}
		}
	}
}

func TestReplicateIsMuchCheaper(t *testing.T) {
	// On the quad cluster, a replicated profile measures a handful of pairs;
	// sanity-check it completes on the full 64-rank machine quickly.
	f, err := fabric.QuadClusterFabric(topo.Block{}, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Replicate = true
	pf, err := Measure(mpi.NewWorld(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pf.P != 64 {
		t.Fatalf("P = %d", pf.P)
	}
	// All cross-node entries share the single measured representative.
	if pf.O.At(0, 8) != pf.O.At(5, 63) {
		t.Fatalf("replication not uniform: %g vs %g", pf.O.At(0, 8), pf.O.At(5, 63))
	}
	if pf.O.At(0, 8) < 30e-6 {
		t.Fatalf("cross-node estimate %g implausible", pf.O.At(0, 8))
	}
}

func TestConfigValidation(t *testing.T) {
	w := mpi.NewWorld(quietFabric(t, 4))
	bad := []Config{
		{Sizes: []int{1}, Batches: []int{1, 2}, Reps: 1},
		{Sizes: []int{1, 2}, Batches: []int{1}, Reps: 1},
		{Sizes: []int{1, 2}, Batches: []int{1, 2}, Reps: 0},
		{Sizes: []int{1, 2}, Batches: []int{1, 2}, Reps: 1, Warmup: -1},
	}
	for i, cfg := range bad {
		if _, err := Measure(w, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	single, err := fabric.New(topo.SingleNode(1, 1, 0), topo.Block{}, 1, fabric.Params{
		Classes:      map[topo.LinkClass]fabric.Link{},
		SelfOverhead: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(mpi.NewWorld(single), Default()); err == nil {
		t.Errorf("1-rank profiling accepted")
	}
}

func TestPaperConfigShape(t *testing.T) {
	cfg := Paper()
	if len(cfg.Sizes) != 21 || cfg.Sizes[0] != 1 || cfg.Sizes[20] != 1<<20 {
		t.Fatalf("paper sizes wrong: %v", cfg.Sizes)
	}
	if len(cfg.Batches) != 32 || cfg.Batches[31] != 32 {
		t.Fatalf("paper batches wrong")
	}
	if cfg.Reps != 25 {
		t.Fatalf("paper reps = %d", cfg.Reps)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	run := func() float64 {
		f, err := fabric.QuadClusterFabric(topo.Block{}, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := Measure(mpi.NewWorld(f), Default())
		if err != nil {
			t.Fatal(err)
		}
		return pf.O.At(0, 7)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("profiling not reproducible: %g vs %g", a, b)
	}
}

func BenchmarkMeasureReplicate64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := fabric.QuadClusterFabric(topo.Block{}, 64, 3)
		if err != nil {
			b.Fatal(err)
		}
		cfg := Default()
		cfg.Replicate = true
		if _, err := Measure(mpi.NewWorld(f), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: for random quiet fabrics, the estimator recovers the ground
// truth within 10% for every link class present.
func TestQuickMeasureRecoversRandomParams(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		alphaLocal := (1 + 9*rng.Float64()) * 1e-6
		alphaRemote := (20 + 80*rng.Float64()) * 1e-6
		spec := topo.Spec{Name: "rand", Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 2}
		params := fabric.Params{
			Classes: map[topo.LinkClass]fabric.Link{
				topo.SameSocket: {Alpha: alphaLocal, Beta: 1e-9, Lambda: alphaLocal / 5},
				topo.CrossNode:  {Alpha: alphaRemote, Beta: 8e-9, Lambda: alphaRemote / 7},
			},
			SelfOverhead: alphaLocal / 2,
		}
		fb, err := fabric.New(spec, topo.Block{}, 4, params)
		if err != nil {
			return false
		}
		pf, err := Measure(mpi.NewWorld(fb), Default())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i == j {
					continue
				}
				if e := relativeErr(pf.O.At(i, j), fb.TrueO(i, j)); e > 0.10 {
					t.Logf("seed %d: O[%d][%d] err %.1f%%", seed, i, j, 100*e)
					return false
				}
				if e := relativeErr(pf.L.At(i, j), fb.TrueL(i, j)); e > 0.10 {
					t.Logf("seed %d: L[%d][%d] err %.1f%%", seed, i, j, 100*e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func relativeErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestPaperProtocolRecoversParameters(t *testing.T) {
	// The paper's exact §IV.A protocol (sizes 1..2^20, batches 1..32, 25
	// reps) on a small noisy job: estimates must stay within 15% despite the
	// megabyte-scale transfer points dominating the fit range.
	spec := topo.Spec{Name: "paper-proto", Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 2}
	params := fabric.Params{
		Classes: map[topo.LinkClass]fabric.Link{
			topo.SameSocket: {Alpha: 10e-6, Beta: 1e-9, Lambda: 2e-6, Sigma: 0.05},
			topo.CrossNode:  {Alpha: 50e-6, Beta: 8e-9, Lambda: 8e-6, Sigma: 0.08},
		},
		SelfOverhead: 1e-6,
		SelfSigma:    0.05,
		Seed:         42,
	}
	f, err := fabric.New(spec, topo.Block{}, 4, params)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Measure(mpi.NewWorld(f), Paper())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if e := relativeErr(pf.O.At(i, j), f.TrueO(i, j)); e > 0.15 {
				t.Errorf("paper-protocol O[%d][%d] err %.1f%%", i, j, 100*e)
			}
			if e := relativeErr(pf.L.At(i, j), f.TrueL(i, j)); e > 0.15 {
				t.Errorf("paper-protocol L[%d][%d] err %.1f%%", i, j, 100*e)
			}
		}
	}
}
