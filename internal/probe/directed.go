package probe

import (
	"errors"
	"fmt"

	"topobarrier/internal/mpi"
	"topobarrier/internal/profile"
	"topobarrier/internal/stats"
	"topobarrier/internal/topo"
)

// MeasureDirected profiles every ordered pair separately, producing a
// possibly asymmetric profile — the extension §IV.A calls trivial. One-way
// latencies are observable because the simulated platform has a global
// virtual clock (the hardware equivalent would be PTP-synchronised clocks);
// the receiver reads the sender's departure timestamp through shared memory
// after the matching receive completes, so the value is only read once the
// message has causally arrived.
//
// Replicate mode measures one representative ordered pair per (link class,
// direction) and replicates it structurally.
func MeasureDirected(w *mpi.World, cfg Config) (*profile.Profile, error) {
	p := w.Size()
	if err := cfg.validate(p); err != nil {
		return nil, err
	}
	fab := w.Fabric()

	type dirKey struct {
		class   topo.LinkClass
		reverse bool // src core > dst core
	}
	var pairs [][2]int
	keys := make([]dirKey, 0)
	seen := map[dirKey]bool{}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i == j {
				continue
			}
			k := dirKey{class: fab.Class(i, j), reverse: fab.CoreOf(i) > fab.CoreOf(j)}
			if cfg.Replicate {
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			pairs = append(pairs, [2]int{i, j})
			keys = append(keys, k)
		}
	}

	oPair := make([]float64, len(pairs))
	lPair := make([]float64, len(pairs))
	oii := make([]float64, p)
	// sendAt[pi] is written by the sender immediately before a timed
	// operation and read by the receiver after its matching receive.
	sendAt := make([]float64, len(pairs))
	batchXs := make([]float64, len(cfg.Batches))
	for k, m := range cfg.Batches {
		batchXs[k] = float64(m)
	}
	sizeXs := make([]float64, len(cfg.Sizes))
	for k, s := range cfg.Sizes {
		sizeXs[k] = float64(s)
	}

	pairErr := make([]error, len(pairs))
	if _, err := w.Run(func(c *mpi.Comm) {
		me := c.Rank()
		for pi, pr := range pairs {
			src, dst := pr[0], pr[1]
			if src != me && dst != me {
				continue
			}
			tag := pi * 8
			if src == me {
				directedSender(c, dst, tag, cfg, pi, sendAt)
				continue
			}
			l, o, err := directedReceiver(c, src, tag, cfg, pi, sendAt, sizeXs, batchXs)
			if err != nil {
				pairErr[pi] = fmt.Errorf("probe: directed pair %d→%d: %w", src, dst, err)
				continue
			}
			lPair[pi], oPair[pi] = l, o
		}
		samples := make([]float64, 0, cfg.Reps)
		for r := 0; r < cfg.Warmup+cfg.Reps; r++ {
			t0 := c.Wtime()
			c.NoopInitiate()
			if r >= cfg.Warmup {
				samples = append(samples, c.Wtime()-t0)
			}
		}
		oii[me] = stats.Mean(samples)
	}); err != nil {
		return nil, err
	}
	if err := errors.Join(pairErr...); err != nil {
		return nil, err
	}

	pf := profile.New(fab.Spec().Name+" (directed)", p)
	if cfg.Replicate {
		byKey := map[dirKey][2]float64{}
		for pi := range pairs {
			byKey[keys[pi]] = [2]float64{oPair[pi], lPair[pi]}
		}
		meanOii := stats.Mean(oii)
		for i := 0; i < p; i++ {
			oii[i] = meanOii
			for j := 0; j < p; j++ {
				if i == j {
					continue
				}
				k := dirKey{class: fab.Class(i, j), reverse: fab.CoreOf(i) > fab.CoreOf(j)}
				v, ok := byKey[k]
				if !ok {
					return nil, fmt.Errorf("probe: no representative for %v", k)
				}
				pf.O.Set(i, j, v[0])
				pf.L.Set(i, j, v[1])
			}
		}
	} else {
		for pi, pr := range pairs {
			pf.O.Set(pr[0], pr[1], oPair[pi])
			pf.L.Set(pr[0], pr[1], lPair[pi])
		}
	}
	for i := 0; i < p; i++ {
		pf.O.Set(i, i, oii[i])
	}
	if err := pf.Validate(); err != nil {
		return nil, err
	}
	return pf, nil
}

// directedSender drives the sending side of one ordered pair.
func directedSender(c *mpi.Comm, dst, tag int, cfg Config, pi int, sendAt []float64) {
	handshake(c, dst, tag, true)
	// L sweep: batches of empty messages; the receiver times them.
	for _, m := range cfg.Batches {
		for r := 0; r < cfg.Warmup+cfg.Reps; r++ {
			sendAt[pi] = c.Wtime()
			reqs := make([]*mpi.Request, m)
			for k := 0; k < m; k++ {
				reqs[k] = c.Issend(dst, tag+1, 0)
			}
			c.Wait(reqs...)
			c.Recv(dst, tag+2) // pace
		}
	}
	// O sweep: single messages of growing size.
	for _, s := range cfg.Sizes {
		for r := 0; r < cfg.Warmup+cfg.Reps; r++ {
			sendAt[pi] = c.Wtime()
			c.Send(dst, tag+3, s)
			c.Recv(dst, tag+4) // pace
		}
	}
}

// directedReceiver times arrivals against the sender's shared departure
// timestamps and fits the directed L and O estimates.
func directedReceiver(c *mpi.Comm, src, tag int, cfg Config, pi int, sendAt []float64, sizeXs, batchXs []float64) (l, o float64, err error) {
	handshake(c, src, tag, false)
	batchMeans := make([]float64, len(cfg.Batches))
	for bi, m := range cfg.Batches {
		samples := make([]float64, 0, cfg.Reps)
		for r := 0; r < cfg.Warmup+cfg.Reps; r++ {
			reqs := make([]*mpi.Request, m)
			for k := 0; k < m; k++ {
				reqs[k] = c.Irecv(src, tag+1)
			}
			c.Wait(reqs...)
			if r >= cfg.Warmup {
				samples = append(samples, c.Wtime()-sendAt[pi])
			}
			c.Send(src, tag+2, 0)
		}
		batchMeans[bi] = stats.Mean(samples)
	}
	lFit, err := stats.LeastSquares(batchXs, batchMeans)
	if err != nil {
		return 0, 0, fmt.Errorf("probe: directed L fit (%d->%d): %w", src, c.Rank(), err)
	}
	l = lFit.Slope
	if l < floor {
		l = floor
	}

	sizeMeans := make([]float64, len(cfg.Sizes))
	for si := range cfg.Sizes {
		samples := make([]float64, 0, cfg.Reps)
		for r := 0; r < cfg.Warmup+cfg.Reps; r++ {
			c.Recv(src, tag+3)
			if r >= cfg.Warmup {
				samples = append(samples, c.Wtime()-sendAt[pi])
			}
			c.Send(src, tag+4, 0)
		}
		sizeMeans[si] = stats.Mean(samples)
	}
	oFit, err := stats.LeastSquares(sizeXs, sizeMeans)
	if err != nil {
		return 0, 0, fmt.Errorf("probe: directed O fit (%d->%d): %w", src, c.Rank(), err)
	}
	// A one-way time is O + β·size + one L term; no halving needed.
	o = oFit.Intercept - l
	if o < floor {
		o = floor
	}
	return l, o, nil
}
