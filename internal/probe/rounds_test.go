package probe

import (
	"reflect"
	"testing"
)

// TestRoundsProperties: every unordered pair exactly once, no rank twice in a
// round, round count P−1 (even) / P (odd) — for a sweep of sizes.
func TestRoundsProperties(t *testing.T) {
	for p := 2; p <= 33; p++ {
		rounds := Rounds(p)
		wantRounds := p - 1
		if p%2 == 1 {
			wantRounds = p
		}
		if len(rounds) != wantRounds {
			t.Fatalf("p=%d: %d rounds, want %d", p, len(rounds), wantRounds)
		}
		seen := map[Pair]int{}
		for r, round := range rounds {
			inRound := map[int]bool{}
			for _, pr := range round {
				if pr.I >= pr.J || pr.I < 0 || pr.J >= p {
					t.Fatalf("p=%d round %d: malformed pair %+v", p, r, pr)
				}
				if inRound[pr.I] || inRound[pr.J] {
					t.Fatalf("p=%d round %d: rank appears twice (%+v)", p, r, pr)
				}
				inRound[pr.I], inRound[pr.J] = true, true
				seen[pr]++
			}
		}
		if want := p * (p - 1) / 2; len(seen) != want {
			t.Fatalf("p=%d: %d distinct pairs scheduled, want %d", p, len(seen), want)
		}
		for pr, n := range seen {
			if n != 1 {
				t.Fatalf("p=%d: pair %+v scheduled %d times", p, pr, n)
			}
		}
	}
}

// TestRoundsDeterministic pins the schedule: two calls agree, and the p=4
// tournament is exactly the circle-method rotation.
func TestRoundsDeterministic(t *testing.T) {
	if !reflect.DeepEqual(Rounds(8), Rounds(8)) {
		t.Fatal("Rounds(8) not deterministic")
	}
	want := [][]Pair{
		{{I: 0, J: 3}, {I: 1, J: 2}},
		{{I: 0, J: 2}, {I: 1, J: 3}},
		{{I: 0, J: 1}, {I: 2, J: 3}},
	}
	if got := Rounds(4); !reflect.DeepEqual(got, want) {
		t.Fatalf("Rounds(4) = %v, want %v", got, want)
	}
}

// TestRoundsOddBye: odd P gives every rank exactly one bye round.
func TestRoundsOddBye(t *testing.T) {
	const p = 7
	byes := make([]int, p)
	for _, round := range Rounds(p) {
		in := map[int]bool{}
		for _, pr := range round {
			in[pr.I], in[pr.J] = true, true
		}
		for r := 0; r < p; r++ {
			if !in[r] {
				byes[r]++
			}
		}
	}
	for r, n := range byes {
		if n != 1 {
			t.Fatalf("rank %d has %d byes, want 1", r, n)
		}
	}
}

func TestRoundsTiny(t *testing.T) {
	if got := Rounds(1); got != nil {
		t.Fatalf("Rounds(1) = %v, want nil", got)
	}
	if got := Rounds(2); len(got) != 1 || len(got[0]) != 1 || got[0][0] != (Pair{0, 1}) {
		t.Fatalf("Rounds(2) = %v", got)
	}
}

func TestRoundOf(t *testing.T) {
	round := []Pair{{0, 3}, {1, 2}}
	if pr, ok := roundOf(round, 2); !ok || pr != (Pair{1, 2}) {
		t.Fatalf("roundOf(2) = %+v, %v", pr, ok)
	}
	if _, ok := roundOf(round, 4); ok {
		t.Fatal("roundOf found a pair for an absent rank")
	}
}
