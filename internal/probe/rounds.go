package probe

// Pair is one unordered probe pair; I < J always. Rank I initiates the
// exchange (the simulator's timed side; the transport probes both directions
// inside the pair's slot).
type Pair struct {
	I, J int
}

// Rounds schedules the complete graph on p ranks as a round-robin tournament
// (the circle method): a proper edge coloring in which every unordered pair
// appears in exactly one round and no rank appears twice within a round. All
// pairs of a round can therefore probe concurrently with every rank in at
// most one timed exchange — measurements stay uncontended while the
// P·(P−1)/2 pairwise blocks collapse into P−1 (even P) or P (odd P) parallel
// rounds.
//
// The schedule is deterministic: rank 0 stays fixed while the remaining
// positions (including the bye slot for odd p) rotate one step per round.
func Rounds(p int) [][]Pair {
	if p < 2 {
		return nil
	}
	n := p
	if n%2 == 1 {
		n++ // pad with a bye slot; its pairings are skipped
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	rounds := make([][]Pair, 0, n-1)
	for r := 0; r < n-1; r++ {
		var round []Pair
		for k := 0; k < n/2; k++ {
			a, b := pos[k], pos[n-1-k]
			if a >= p || b >= p {
				continue // bye
			}
			if a > b {
				a, b = b, a
			}
			round = append(round, Pair{I: a, J: b})
		}
		rounds = append(rounds, round)
		// Rotate all positions but the first one step clockwise.
		last := pos[n-1]
		copy(pos[2:], pos[1:n-1])
		pos[1] = last
	}
	return rounds
}

// roundOf returns the pair containing rank me in the given round, if any.
func roundOf(round []Pair, me int) (Pair, bool) {
	for _, pr := range round {
		if pr.I == me || pr.J == me {
			return pr, true
		}
	}
	return Pair{}, false
}
