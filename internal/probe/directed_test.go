package probe

import (
	"math"
	"testing"

	"topobarrier/internal/fabric"
	"topobarrier/internal/mpi"
	"topobarrier/internal/topo"
)

// skewedFabric returns a quiet fabric whose reverse-direction links (higher
// core to lower core) cost 50% more.
func skewedFabric(t testing.TB, p int) *fabric.Fabric {
	t.Helper()
	spec := topo.Spec{Name: "skewed", Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 4}
	params := fabric.Params{
		Classes: map[topo.LinkClass]fabric.Link{
			topo.SameSocket: {Alpha: 10e-6, Beta: 1e-9, Lambda: 2e-6},
			topo.CrossNode:  {Alpha: 50e-6, Beta: 8e-9, Lambda: 8e-6},
		},
		SelfOverhead:  1e-6,
		DirectionSkew: 0.5,
	}
	f, err := fabric.New(spec, topo.Block{}, p, params)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFabricDirectionSkew(t *testing.T) {
	f := skewedFabric(t, 8)
	fwd := f.TrueO(0, 4)
	rev := f.TrueO(4, 0)
	if math.Abs(rev/fwd-1.5) > 1e-12 {
		t.Fatalf("skew not applied: fwd %g rev %g", fwd, rev)
	}
	if f.TrueL(4, 0)/f.TrueL(0, 4) != 1.5 {
		t.Fatalf("skew not applied to L")
	}
	// Noise-free samples match ground truth in both directions.
	if f.SendOverhead(4, 0, 0) != rev {
		t.Fatalf("sample does not reflect skew")
	}
}

func TestMeasureDirectedRecoversAsymmetry(t *testing.T) {
	f := skewedFabric(t, 6)
	pf, err := MeasureDirected(mpi.NewWorld(f), Default())
	if err != nil {
		t.Fatal(err)
	}
	relErr := func(got, want float64) float64 { return math.Abs(got-want) / want }
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			if e := relErr(pf.O.At(i, j), f.TrueO(i, j)); e > 0.08 {
				t.Errorf("directed O[%d][%d] = %g, want %g", i, j, pf.O.At(i, j), f.TrueO(i, j))
			}
			if e := relErr(pf.L.At(i, j), f.TrueL(i, j)); e > 0.08 {
				t.Errorf("directed L[%d][%d] = %g, want %g", i, j, pf.L.At(i, j), f.TrueL(i, j))
			}
		}
	}
	// The asymmetry itself must be visible in the profile.
	if pf.O.At(4, 0) < 1.3*pf.O.At(0, 4) {
		t.Fatalf("profile symmetrised away the skew: %g vs %g", pf.O.At(4, 0), pf.O.At(0, 4))
	}
}

func TestMeasureDirectedReplicate(t *testing.T) {
	f := skewedFabric(t, 8)
	cfg := Default()
	cfg.Replicate = true
	pf, err := MeasureDirected(mpi.NewWorld(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Structural replication must preserve direction classes: all forward
	// cross-node entries equal, all reverse cross-node entries equal, and
	// the two differ by the skew.
	if pf.O.At(0, 4) != pf.O.At(1, 5) {
		t.Fatalf("forward replication broken")
	}
	if pf.O.At(4, 0) != pf.O.At(5, 1) {
		t.Fatalf("reverse replication broken")
	}
	if pf.O.At(4, 0) < 1.3*pf.O.At(0, 4) {
		t.Fatalf("replicated profile lost the asymmetry")
	}
}

func TestSymmetricFabricDirectedProfileSymmetric(t *testing.T) {
	f := quietFabric(t, 6)
	pf, err := MeasureDirected(mpi.NewWorld(f), Default())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			a, b := pf.O.At(i, j), pf.O.At(j, i)
			if math.Abs(a-b)/a > 0.05 {
				t.Fatalf("directed profile of symmetric fabric asymmetric at (%d,%d): %g vs %g", i, j, a, b)
			}
		}
	}
}

func TestMeasureDirectedValidation(t *testing.T) {
	f := skewedFabric(t, 4)
	if _, err := MeasureDirected(mpi.NewWorld(f), Config{Sizes: []int{1}, Batches: []int{1, 2}, Reps: 1}); err == nil {
		t.Fatalf("bad config accepted")
	}
}
