package trace

import (
	"strings"
	"testing"

	"topobarrier/internal/baseline"
	"topobarrier/internal/fabric"
	"topobarrier/internal/mpi"
	"topobarrier/internal/run"
	"topobarrier/internal/sched"
	"topobarrier/internal/topo"
)

func quadFabric(t testing.TB, p int) *fabric.Fabric {
	t.Helper()
	f, err := fabric.QuadClusterFabric(topo.RoundRobin{}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func syntheticEvents() []mpi.TraceEvent {
	return []mpi.TraceEvent{
		{Src: 0, Dst: 1, Sent: 0, Arrived: 10e-6},
		{Src: 0, Dst: 3, Sent: 0, Arrived: 5e-6}, // unrelated short hop
		{Src: 1, Dst: 2, Sent: 10e-6, Arrived: 25e-6},
		{Src: 2, Dst: 3, Sent: 25e-6, Arrived: 30e-6},
	}
}

func TestSpanAndLatencies(t *testing.T) {
	r := &Recorder{Events: syntheticEvents()}
	start, end := r.Span()
	if start != 0 || end != 30e-6 {
		t.Fatalf("span = [%g, %g]", start, end)
	}
	all := r.Latencies(-1, -1)
	if len(all) != 4 {
		t.Fatalf("latencies = %v", all)
	}
	from0 := r.Latencies(0, -1)
	if len(from0) != 2 {
		t.Fatalf("src filter broken: %v", from0)
	}
	exact := r.Latencies(1, 2)
	if len(exact) != 1 || exact[0] != 15e-6 {
		t.Fatalf("pair filter broken: %v", exact)
	}
}

func TestCriticalPathFollowsCausalChain(t *testing.T) {
	r := &Recorder{Events: syntheticEvents()}
	chain := r.CriticalPath()
	if len(chain) != 3 {
		t.Fatalf("chain length = %d, want 3: %+v", len(chain), chain)
	}
	if chain[0].Src != 0 || chain[0].Dst != 1 ||
		chain[1].Src != 1 || chain[1].Dst != 2 ||
		chain[2].Src != 2 || chain[2].Dst != 3 {
		t.Fatalf("chain = %+v", chain)
	}
	// The chain must be causally ordered.
	for i := 1; i < len(chain); i++ {
		if chain[i].Sent < chain[i-1].Arrived-1e-15 {
			t.Fatalf("chain not causal at hop %d", i)
		}
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	r := &Recorder{}
	if got := r.CriticalPath(); got != nil {
		t.Fatalf("empty recorder produced a chain: %v", got)
	}
}

func TestTracedBarrierRun(t *testing.T) {
	p := 8
	w, rec := NewTracedWorld(quadFabric(t, p))
	elapsed, err := RunOnce(w, run.ScheduleFunc(sched.Tree(p)))
	if err != nil {
		t.Fatal(err)
	}
	// A tree barrier over 8 ranks delivers 2·7 = 14 signals.
	if len(rec.Events) != 14 {
		t.Fatalf("recorded %d events, want 14", len(rec.Events))
	}
	_, end := rec.Span()
	if end > elapsed+1e-12 {
		t.Fatalf("event after run end: %g > %g", end, elapsed)
	}
	chain := rec.CriticalPath()
	if len(chain) < 3 {
		t.Fatalf("tree critical path too short: %d hops", len(chain))
	}
	// The chain must terminate at the last arrival in the run.
	if chain[len(chain)-1].Arrived < end-1e-12 {
		t.Fatalf("chain does not end at the final arrival")
	}
	rec.Reset()
	if len(rec.Events) != 0 {
		t.Fatalf("reset did not clear events")
	}
}

func TestPerLinkSeparatesClasses(t *testing.T) {
	p := 8
	w, rec := NewTracedWorld(quadFabric(t, p))
	if _, err := RunOnce(w, baseline.Dissemination); err != nil {
		t.Fatal(err)
	}
	stats := rec.PerLink()
	if len(stats) == 0 {
		t.Fatalf("no link stats")
	}
	// Round-robin p=8 on the quad cluster spans one node? No: 8 ranks fit
	// one node, so every link is intra-node; all means must be small.
	for _, ls := range stats {
		if ls.Count < 1 || ls.Mean <= 0 || ls.Max < ls.Mean {
			t.Fatalf("malformed link stats %+v", ls)
		}
		if ls.Mean > 20e-6 {
			t.Fatalf("intra-node link %d->%d mean %.1fµs too slow", ls.Src, ls.Dst, ls.Mean*1e6)
		}
	}
}

func TestPerLinkObservesHierarchy(t *testing.T) {
	p := 16 // two nodes under round-robin
	w, rec := NewTracedWorld(quadFabric(t, p))
	if _, err := RunOnce(w, baseline.Dissemination); err != nil {
		t.Fatal(err)
	}
	f := quadFabric(t, p)
	var local, remote []float64
	for _, ls := range rec.PerLink() {
		if f.Class(ls.Src, ls.Dst) == topo.CrossNode {
			remote = append(remote, ls.Mean)
		} else {
			local = append(local, ls.Mean)
		}
	}
	if len(local) == 0 || len(remote) == 0 {
		t.Fatalf("expected both link classes in a 2-node dissemination")
	}
	if mean(remote) < 5*mean(local) {
		t.Fatalf("traces do not expose the locality gap: remote %.1fµs vs local %.1fµs",
			mean(remote)*1e6, mean(local)*1e6)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestGanttRendering(t *testing.T) {
	p := 4
	w, rec := NewTracedWorld(quadFabric(t, p))
	if _, err := RunOnce(w, run.ScheduleFunc(sched.Linear(p))); err != nil {
		t.Fatal(err)
	}
	g := rec.Gantt(p, 40)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != p+1 {
		t.Fatalf("gantt rows = %d:\n%s", len(lines), g)
	}
	if !strings.Contains(g, ">") || !strings.Contains(g, "<") {
		t.Fatalf("gantt lacks send/arrive marks:\n%s", g)
	}
	if (&Recorder{}).Gantt(2, 40) != "(no events)\n" {
		t.Fatalf("empty gantt wrong")
	}
}

func TestMeasuredCriticalPathTracksElapsed(t *testing.T) {
	// The elapsed time of a single linear barrier equals the end of its
	// measured critical path.
	p := 12
	w, rec := NewTracedWorld(quadFabric(t, p))
	elapsed, err := RunOnce(w, run.ScheduleFunc(sched.Linear(p)))
	if err != nil {
		t.Fatal(err)
	}
	chain := rec.CriticalPath()
	endOfChain := chain[len(chain)-1].Arrived
	if endOfChain > elapsed || elapsed-endOfChain > 5e-6 {
		t.Fatalf("critical path ends at %g, run at %g", endOfChain, elapsed)
	}
}
