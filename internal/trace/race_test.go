package trace

import (
	"sync"
	"testing"

	"topobarrier/internal/fabric"
	"topobarrier/internal/mpi"
	"topobarrier/internal/run"
	"topobarrier/internal/sched"
	"topobarrier/internal/topo"
)

// TestRecorderHookConcurrent hammers one Recorder's hook from many goroutines
// at once; under -race this pins that concurrent trace callbacks are safe.
func TestRecorderHookConcurrent(t *testing.T) {
	rec := &Recorder{}
	hook := rec.Hook()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				hook(mpi.TraceEvent{Src: w, Dst: (w + 1) % workers, Sent: float64(i), Arrived: float64(i) + 1})
			}
		}()
	}
	wg.Wait()
	if got := len(rec.Events); got != workers*per {
		t.Fatalf("recorded %d events, want %d (lost appends)", got, workers*per)
	}
}

// TestRecorderResetConcurrentWithHook interleaves Reset with hook callbacks;
// the point is the -race verdict, not the final event count.
func TestRecorderResetConcurrentWithHook(t *testing.T) {
	rec := &Recorder{}
	hook := rec.Hook()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			hook(mpi.TraceEvent{Src: 0, Dst: 1, Sent: float64(i), Arrived: float64(i) + 1})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			rec.Reset()
		}
	}()
	wg.Wait()
}

// TestTracedWorldUnderRace runs a real traced simulation, whose rank
// goroutines drive the hook concurrently — the scenario the mutex exists for.
func TestTracedWorldUnderRace(t *testing.T) {
	fab, err := fabric.New(topo.QuadCluster(), topo.RoundRobin{}, 8, fabric.GigEParams(1))
	if err != nil {
		t.Fatal(err)
	}
	w, rec := NewTracedWorld(fab)
	if _, err := RunOnce(w, run.ScheduleFunc(sched.Dissemination(8))); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) == 0 {
		t.Fatal("traced run recorded no events")
	}
}
