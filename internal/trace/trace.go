// Package trace records and analyses the message-level execution of barrier
// runs. Where internal/predict computes the critical path of the *model*,
// this package extracts the critical path of an *actual* (simulated)
// execution, supporting the paper's §VI validation at per-message
// granularity: per-link observed latencies, per-rank timelines, and a text
// Gantt rendering of one barrier.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"topobarrier/internal/fabric"
	"topobarrier/internal/mpi"
	"topobarrier/internal/run"
	"topobarrier/internal/stats"
)

// Recorder collects delivered-message events from a runtime via WithTracer.
// The hook may be invoked from concurrent rank goroutines; appends are
// serialised internally. Events may be read directly once the traced run has
// completed (no concurrent hooks in flight).
type Recorder struct {
	mu     sync.Mutex
	Events []mpi.TraceEvent
}

// Hook returns the callback to install with mpi.WithTracer. It is safe for
// concurrent use.
func (r *Recorder) Hook() func(mpi.TraceEvent) {
	return func(e mpi.TraceEvent) {
		r.mu.Lock()
		r.Events = append(r.Events, e)
		r.mu.Unlock()
	}
}

// Reset discards recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.Events = nil
	r.mu.Unlock()
}

// Latencies returns the observed per-message latency (arrival − send time)
// for every event between src and dst; src or dst may be -1 for any.
func (r *Recorder) Latencies(src, dst int) []float64 {
	var out []float64
	for _, e := range r.Events {
		if (src == -1 || e.Src == src) && (dst == -1 || e.Dst == dst) {
			out = append(out, e.Arrived-e.Sent)
		}
	}
	return out
}

// Span returns the time interval covered by the recorded events.
func (r *Recorder) Span() (start, end float64) {
	if len(r.Events) == 0 {
		return 0, 0
	}
	start, end = r.Events[0].Sent, r.Events[0].Arrived
	for _, e := range r.Events[1:] {
		if e.Sent < start {
			start = e.Sent
		}
		if e.Arrived > end {
			end = e.Arrived
		}
	}
	return start, end
}

// CriticalPath reconstructs the longest chain of causally ordered messages
// in the recorded execution: event B depends on event A when B was sent by
// the rank that received A, at or after A's arrival. The returned slice is
// the chain in send order; its elapsed time is the measured critical path.
func (r *Recorder) CriticalPath() []mpi.TraceEvent {
	evs := append([]mpi.TraceEvent(nil), r.Events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Sent < evs[j].Sent })
	// best[i]: longest chain ending at event i, tracked via predecessor.
	endTime := make([]float64, len(evs))
	prev := make([]int, len(evs))
	bestIdx := -1
	for i, e := range evs {
		endTime[i] = e.Arrived
		prev[i] = -1
		// Chain through the most recently completed event received by this
		// sender.
		for j := 0; j < i; j++ {
			if evs[j].Dst == e.Src && evs[j].Arrived <= e.Sent+1e-15 {
				if prev[i] == -1 || endTime[j] > endTime[prev[i]] {
					// Prefer the predecessor whose own chain is longest.
					if prev[i] == -1 || chainStart(evs, prev, j) <= chainStart(evs, prev, prev[i]) {
						prev[i] = j
					}
				}
			}
		}
		if bestIdx == -1 || evs[i].Arrived > evs[bestIdx].Arrived {
			bestIdx = i
		}
	}
	if bestIdx == -1 {
		return nil
	}
	var chain []mpi.TraceEvent
	for i := bestIdx; i != -1; i = prev[i] {
		chain = append(chain, evs[i])
	}
	// Reverse into send order.
	for a, b := 0, len(chain)-1; a < b; a, b = a+1, b-1 {
		chain[a], chain[b] = chain[b], chain[a]
	}
	return chain
}

// chainStart walks predecessors to the chain's first send time.
func chainStart(evs []mpi.TraceEvent, prev []int, i int) float64 {
	for prev[i] != -1 {
		i = prev[i]
	}
	return evs[i].Sent
}

// LinkStats summarises observed latencies grouped by (src, dst) pair.
type LinkStats struct {
	Src, Dst  int
	Count     int
	Mean, Max float64
}

// PerLink aggregates the recorded events by link.
func (r *Recorder) PerLink() []LinkStats {
	type key struct{ s, d int }
	agg := map[key][]float64{}
	for _, e := range r.Events {
		k := key{e.Src, e.Dst}
		agg[k] = append(agg[k], e.Arrived-e.Sent)
	}
	var out []LinkStats
	for k, ls := range agg {
		out = append(out, LinkStats{
			Src: k.s, Dst: k.d, Count: len(ls),
			Mean: stats.Mean(ls), Max: stats.Max(ls),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Gantt renders the recorded events as a per-rank text timeline: each row is
// a rank, each message is drawn from its send column to its arrival column.
// width is the number of character columns.
func (r *Recorder) Gantt(p, width int) string {
	start, end := r.Span()
	if end <= start || width < 10 {
		return "(no events)\n"
	}
	col := func(t float64) int {
		c := int(float64(width-1) * (t - start) / (end - start))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	rows := make([][]byte, p)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, e := range r.Events {
		c0, c1 := col(e.Sent), col(e.Arrived)
		if e.Dst >= 0 && e.Dst < p {
			for c := c0 + 1; c < c1; c++ {
				if rows[e.Dst][c] == '.' {
					rows[e.Dst][c] = '-' // message in flight toward this rank
				}
			}
			rows[e.Dst][c1] = '<'
		}
		if e.Src >= 0 && e.Src < p {
			rows[e.Src][c0] = '>'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t ∈ [%.1fµs, %.1fµs], %d messages\n", start*1e6, end*1e6, len(r.Events))
	for i, row := range rows {
		fmt.Fprintf(&b, "%3d %s\n", i, string(row))
	}
	return b.String()
}

// NewTracedWorld wraps a placed fabric into a world with a fresh recorder
// installed, returning both.
func NewTracedWorld(fab *fabric.Fabric, opts ...mpi.Option) (*mpi.World, *Recorder) {
	rec := &Recorder{}
	opts = append(opts, mpi.WithTracer(rec.Hook()))
	return mpi.NewWorld(fab, opts...), rec
}

// RunOnce drives one barrier execution on a traced world and returns its
// elapsed virtual time.
func RunOnce(w *mpi.World, b run.Func) (float64, error) {
	return w.Run(func(c *mpi.Comm) { b(c, 0) })
}
