package topobarrier_test

import (
	"testing"

	"topobarrier"
)

func hexWorld(t testing.TB, p int, seed uint64) (*topobarrier.World, *topobarrier.Fabric) {
	t.Helper()
	fab, err := topobarrier.NewFabric(topobarrier.HexCluster(), topobarrier.RoundRobin{}, p, topobarrier.GigEParams(seed))
	if err != nil {
		t.Fatal(err)
	}
	return topobarrier.NewWorld(fab), fab
}

func TestPublicSearchImprovesSeed(t *testing.T) {
	_, fab := hexWorld(t, 24, 1)
	prof := fab.TrueProfile()
	pd := topobarrier.NewPredictor(prof)
	seed := topobarrier.Dissemination(24)
	res, err := topobarrier.AnnealSearch(pd, seed, topobarrier.AnnealOptions{Seed: 1, Steps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > pd.Cost(seed) {
		t.Fatalf("search worse than seed")
	}
	if !res.Schedule.IsBarrier() {
		t.Fatalf("search result not a barrier")
	}
	if _, err := topobarrier.ExhaustiveSearch(pd, 2, false); err == nil {
		t.Fatalf("intractable exhaustive accepted")
	}
}

func TestPublicCollectives(t *testing.T) {
	w, fab := hexWorld(t, 36, 2)
	prof := fab.TrueProfile()
	pd := topobarrier.NewPredictor(prof)
	tree := topobarrier.ClusterRanks(prof, topobarrier.ClusterOptions{MaxDepth: 1})

	b, err := topobarrier.HierBcast(pd, tree, topobarrier.PaperBuilders())
	if err != nil {
		t.Fatal(err)
	}
	if err := topobarrier.ValidateBroadcast(w, b, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	g, err := topobarrier.HierGather(pd, tree, topobarrier.PaperBuilders())
	if err != nil {
		t.Fatal(err)
	}
	if err := topobarrier.ValidateGather(w, g, 0, 0.5, []int{0, 35}); err != nil {
		t.Fatal(err)
	}
	hier, err := topobarrier.MeasureCold(w, topobarrier.TransferFunc(b, 64), 5)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := topobarrier.MeasureCold(w, topobarrier.TransferFunc(topobarrier.BinomialBcast(36), 64), 5)
	if err != nil {
		t.Fatal(err)
	}
	if hier.Mean >= bin.Mean {
		t.Fatalf("hierarchical bcast %.1fµs not faster one-shot than binomial %.1fµs",
			hier.Mean*1e6, bin.Mean*1e6)
	}
}

func TestPublicTracingAndRefinement(t *testing.T) {
	fab, err := topobarrier.NewFabric(topobarrier.QuadCluster(), topobarrier.RoundRobin{}, 16, topobarrier.GigEParams(3))
	if err != nil {
		t.Fatal(err)
	}
	w, rec := topobarrier.NewTracedWorld(fab)
	if _, err := topobarrier.RunTracedOnce(w, topobarrier.MPIBarrier); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) == 0 {
		t.Fatalf("no events recorded")
	}
	if len(rec.CriticalPath()) == 0 {
		t.Fatalf("no critical path")
	}
	prof := fab.TrueProfile()
	n, err := topobarrier.RefineProfile(prof, rec, 0.3)
	if err != nil || n == 0 {
		t.Fatalf("refinement failed: n=%d err=%v", n, err)
	}
}

func TestPublicDriftSession(t *testing.T) {
	if !topobarrier.RetuneProfitable(100e-6, 50e-6, 1e-3, 1000) {
		t.Fatalf("profitability check wrong")
	}
	mon, err := topobarrier.NewDriftMonitor(100e-6, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	mon.Observe(200e-6)
	if !mon.Observe(200e-6) {
		t.Fatalf("drift not flagged")
	}
	w, _ := hexWorld(t, 12, 4)
	cfg := topobarrier.DefaultProbe()
	cfg.Replicate = true
	sess, err := topobarrier.NewSession(w, cfg, topobarrier.TuneOptions{}, 1e-3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Current() == nil {
		t.Fatalf("no initial barrier")
	}
}
