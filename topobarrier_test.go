package topobarrier_test

import (
	"strings"
	"testing"

	"topobarrier"
)

// TestPublicPipeline exercises the documented quickstart flow end to end
// through the public facade only.
func TestPublicPipeline(t *testing.T) {
	fab, err := topobarrier.NewFabric(topobarrier.QuadCluster(), topobarrier.RoundRobin{}, 24, topobarrier.GigEParams(1))
	if err != nil {
		t.Fatal(err)
	}
	world := topobarrier.NewWorld(fab)

	cfg := topobarrier.DefaultProbe()
	cfg.Replicate = true
	prof, err := topobarrier.MeasureProfile(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prof.P != 24 {
		t.Fatalf("profile P = %d", prof.P)
	}

	tuned, err := topobarrier.Tune(prof, topobarrier.TuneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := topobarrier.Validate(world, tuned.Func(), 0.5, []int{0, 11, 23}); err != nil {
		t.Fatal(err)
	}

	hybrid, err := topobarrier.Measure(world, tuned.Func(), 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	mpi, err := topobarrier.Measure(world, topobarrier.MPIBarrier, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.Mean > 1.15*mpi.Mean {
		t.Fatalf("tuned barrier %.1fµs slower than MPI tree %.1fµs", hybrid.Mean*1e6, mpi.Mean*1e6)
	}

	src, err := tuned.GenerateSource(topobarrier.CodegenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "Issend") {
		t.Fatalf("generated source has no sends")
	}
}

func TestPublicScheduleAndPredictor(t *testing.T) {
	fab, err := topobarrier.NewFabric(topobarrier.HexCluster(), topobarrier.Block{}, 36, topobarrier.GigEParams(2))
	if err != nil {
		t.Fatal(err)
	}
	prof := fab.TrueProfile()
	pd := topobarrier.NewPredictor(prof)
	lin := pd.Cost(topobarrier.Linear(36))
	tree := pd.Cost(topobarrier.Tree(36))
	dis := pd.Cost(topobarrier.Dissemination(36))
	if !(tree < lin) || dis <= 0 {
		t.Fatalf("predicted costs implausible: L=%g D=%g T=%g", lin, dis, tree)
	}
	// The public schedule interpreter must synchronise too.
	world := topobarrier.NewWorld(fab)
	s := topobarrier.Tree(36)
	err = topobarrier.Validate(world, func(c *topobarrier.Comm, tag int) {
		topobarrier.ExecuteSchedule(c, s, tag)
	}, 0.5, []int{0, 35})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicClusteringAndHeatMap(t *testing.T) {
	fab, err := topobarrier.NewFabric(topobarrier.SingleNode(2, 4, 2), topobarrier.Block{}, 8, topobarrier.GigEParams(3))
	if err != nil {
		t.Fatal(err)
	}
	prof := fab.TrueProfile()
	tree := topobarrier.ClusterRanks(prof, topobarrier.ClusterOptions{})
	if tree.IsLeaf() {
		t.Fatalf("single node shows no internal locality")
	}
	hm := topobarrier.HeatMap(prof.L, "L matrix, 2x4 cores")
	if !strings.Contains(hm, "L matrix") {
		t.Fatalf("heat map broken")
	}
	if len(topobarrier.Baselines()) != 4 {
		t.Fatalf("baseline set changed")
	}
	if len(topobarrier.PaperBuilders()) != 3 || len(topobarrier.ExtendedBuilders()) != 5 {
		t.Fatalf("builder sets changed")
	}
}
