//go:build race

package topobarrier_test

// scaleTestP is the rank count for the large-P end-to-end tuning tests.
// Under the race detector every matrix word access is instrumented, so the
// tests exercise the same code paths at a quarter of the scale.
const scaleTestP = 256

// scaleRaceEnabled relaxes the large-P throughput floors when the race
// detector multiplies the cost of every matrix word access.
const scaleRaceEnabled = true
