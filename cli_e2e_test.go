package topobarrier_test

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd executes one of the repository's commands via the go tool.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// runCmdExit executes a command that may legitimately exit non-zero and
// returns its combined output and exit code.
func runCmdExit(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

// TestCLIPipeline drives profilecluster → predictbarrier → tunebarrier →
// runbarrier → genbarrier → searchbarrier end to end through their public
// command-line interfaces.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the command suite")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	prof := filepath.Join(dir, "prof.json")
	schedule := filepath.Join(dir, "sched.json")
	genfile := filepath.Join(dir, "barrier.go")

	out := runCmd(t, "./cmd/profilecluster", "-cluster", "quad", "-p", "22", "-o", prof)
	if !strings.Contains(out, "wrote "+prof) {
		t.Fatalf("profilecluster output: %s", out)
	}
	if _, err := os.Stat(prof); err != nil {
		t.Fatal(err)
	}

	out = runCmd(t, "./cmd/predictbarrier", "-profile", prof)
	for _, want := range []string{"linear", "dissemination", "tree", "predicted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("predictbarrier output missing %q:\n%s", want, out)
		}
	}

	out = runCmd(t, "./cmd/tunebarrier", "-profile", prof, "-o", schedule, "-maxdepth", "1")
	if !strings.Contains(out, "root") || !strings.Contains(out, "wrote "+schedule) {
		t.Fatalf("tunebarrier output:\n%s", out)
	}

	out = runCmd(t, "./cmd/runbarrier", "-cluster", "quad", "-p", "22", "-alg", schedule, "-iters", "10")
	if !strings.Contains(out, "µs/barrier") {
		t.Fatalf("runbarrier output:\n%s", out)
	}
	out = runCmd(t, "./cmd/runbarrier", "-cluster", "quad", "-p", "22", "-alg", "mpi", "-iters", "10")
	if !strings.Contains(out, "MPI barrier") {
		t.Fatalf("runbarrier mpi output:\n%s", out)
	}

	runCmd(t, "./cmd/genbarrier", "-schedule", schedule, "-o", genfile, "-pkg", "main", "-func", "B")
	src, err := os.ReadFile(genfile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "func B(c *topobarrier.Comm") {
		t.Fatalf("genbarrier output:\n%s", src)
	}

	out = runCmd(t, "./cmd/searchbarrier", "-profile", prof, "-seed-alg", "tree", "-steps", "300", "-restarts", "1")
	if !strings.Contains(out, "barrier verified: true") {
		t.Fatalf("searchbarrier output:\n%s", out)
	}
}

// TestCLIExperimentsSubset regenerates two cheap figures through the
// experiments command and checks the CSV/text outputs land on disk.
func TestCLIExperimentsSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the experiments command")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	out := runCmd(t, "./cmd/experiments", "-fig", "9,10", "-out", dir)
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "Figure 10") {
		t.Fatalf("experiments output:\n%s", out)
	}
	for _, f := range []string{"figure9.txt", "figure10.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
}

// TestCLIBarrierLib drives the library command: tune (miss), tune (hit),
// check, list.
func TestCLIBarrierLib(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the barrierlib command")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	out := runCmd(t, "./cmd/barrierlib", "tune", "-dir", dir, "-cluster", "quad", "-p", "12")
	if !strings.Contains(out, "tuned now") {
		t.Fatalf("first tune output: %s", out)
	}
	out = runCmd(t, "./cmd/barrierlib", "tune", "-dir", dir, "-cluster", "quad", "-p", "12")
	if !strings.Contains(out, "loaded from library") {
		t.Fatalf("second tune output: %s", out)
	}
	out = runCmd(t, "./cmd/barrierlib", "check", "-dir", dir, "-cluster", "quad", "-p", "12")
	if !strings.Contains(out, "synchronization verified") {
		t.Fatalf("check output: %s", out)
	}
	out = runCmd(t, "./cmd/barrierlib", "list", "-dir", dir)
	if !strings.Contains(out, "P=12") {
		t.Fatalf("list output: %s", out)
	}
}

// TestCLIBarrierVet drives the static analyzer end to end: a schedule that
// breaks Eq. 3 must exit non-zero with a concrete (i,j) witness, a genuine
// barrier must report clean, a linear barrier with gratuitous extra edges
// must surface removable redundant signals, and the runbarrier gate must
// refuse the broken schedule before execution.
func TestCLIBarrierVet(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the barriervet command")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	good := filepath.Join(dir, "good.json")
	fat := filepath.Join(dir, "fat.json")
	// bad: only 1→0 over three ranks; rank 2 is isolated.
	if err := os.WriteFile(bad, []byte(`{"name":"broken(3)","p":3,"stages":[[[1,0]]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// good: the full linear barrier over three ranks.
	if err := os.WriteFile(good, []byte(`{"name":"linear(3)","p":3,"stages":[[[1,0],[2,0]],[[0,1],[0,2]]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// fat: linear(3) plus a redundant extra edge 1→2 in the departure stage.
	if err := os.WriteFile(fat, []byte(`{"name":"linear-plus(3)","p":3,"stages":[[[1,0],[2,0]],[[0,1],[0,2],[1,2]]]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	out, code := runCmdExit(t, "./cmd/barriervet", bad)
	if code == 0 {
		t.Fatalf("barriervet exit 0 on a non-barrier:\n%s", out)
	}
	for _, want := range []string{"NOT A BARRIER", "sync-witness", "never learns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("barriervet output missing %q:\n%s", want, out)
		}
	}

	out, code = runCmdExit(t, "./cmd/barriervet", good)
	if code != 0 {
		t.Fatalf("barriervet exit %d on a clean barrier:\n%s", code, out)
	}
	if !strings.Contains(out, "BARRIER (Eq. 3 satisfied)") {
		t.Fatalf("barriervet clean report:\n%s", out)
	}

	out, code = runCmdExit(t, "./cmd/barriervet", fat)
	if code != 0 {
		t.Fatalf("barriervet exit %d on redundant-but-valid barrier:\n%s", code, out)
	}
	if !strings.Contains(out, "redundant-signals") {
		t.Fatalf("barriervet did not flag the removable signal:\n%s", out)
	}

	out, code = runCmdExit(t, "./cmd/barriervet", "-json", bad)
	if code == 0 || !strings.Contains(out, `"severity": "error"`) {
		t.Fatalf("barriervet -json output (exit %d):\n%s", code, out)
	}

	// The pre-execution gate: runbarrier must refuse the broken schedule.
	out, code = runCmdExit(t, "./cmd/runbarrier", "-cluster", "quad", "-p", "3", "-alg", bad, "-iters", "1")
	if code == 0 || !strings.Contains(out, "barriervet") {
		t.Fatalf("runbarrier did not gate on analysis (exit %d):\n%s", code, out)
	}
}

// TestCLIRunBarrierNetExitCode pins the fail-fast contract at the process
// boundary: a healthy loopback-mesh run exits 0, and a run where any rank
// fails (here a severed link) exits non-zero with the failing rank named,
// rather than hanging or reporting success.
func TestCLIRunBarrierNetExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the runbarrier command over a real TCP mesh")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	out, code := runCmdExit(t, "./cmd/runbarrier", "-net", "-p", "4", "-alg", "dissemination",
		"-iters", "3", "-warmup", "1", "-telemetry", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("healthy -net run exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "loopback TCP mesh") || !strings.Contains(out, "telemetry: http://") {
		t.Fatalf("healthy -net output:\n%s", out)
	}
	out, code = runCmdExit(t, "./cmd/runbarrier", "-net", "-p", "4", "-alg", "dissemination",
		"-iters", "3", "-warmup", "1", "-net-deadline", "500ms", "-net-fault", "sever:0:2")
	if code == 0 {
		t.Fatalf("-net run with a severed link exited 0:\n%s", out)
	}
	if !strings.Contains(out, "failed") || !strings.Contains(out, "fail-fast") {
		t.Fatalf("faulted -net output does not report the failure:\n%s", out)
	}
}

// TestCLIRunBarrierHybrid drives runbarrier over the hybrid shm+TCP mesh
// through its public flag surface, and pins the flag-validation error paths:
// -transport/-colocate require -net, and -colocate requires -transport hybrid.
func TestCLIRunBarrierHybrid(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the runbarrier command over a hybrid mesh")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	out, code := runCmdExit(t, "./cmd/runbarrier", "-net", "-p", "4", "-alg", "dissemination",
		"-iters", "3", "-warmup", "1", "-transport", "hybrid", "-colocate", "nodes=2")
	if code != 0 {
		t.Fatalf("healthy hybrid run exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "hybrid shm+TCP mesh") {
		t.Fatalf("hybrid run output does not name the mesh:\n%s", out)
	}

	out, code = runCmdExit(t, "./cmd/runbarrier", "-p", "4", "-alg", "dissemination",
		"-transport", "hybrid")
	if code == 0 || !strings.Contains(out, "require -net") {
		t.Fatalf("-transport without -net accepted (exit %d):\n%s", code, out)
	}

	out, code = runCmdExit(t, "./cmd/runbarrier", "-net", "-p", "4", "-alg", "dissemination",
		"-iters", "1", "-colocate", "nodes=2")
	if code == 0 || !strings.Contains(out, "-transport hybrid") {
		t.Fatalf("-colocate without hybrid accepted (exit %d):\n%s", code, out)
	}
}

// TestCLITraceBarrierNetDrift drives the predicted-vs-observed drift report
// over a real loopback mesh and checks the Chrome trace artifact parses and
// carries per-stage spans.
func TestCLITraceBarrierNetDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the tracebarrier command over a real TCP mesh")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out := runCmd(t, "./cmd/tracebarrier", "-net", "-p", "4", "-alg", "dissemination",
		"-iters", "2", "-warmup", "1", "-probe-iters", "3", "-trace-out", traceFile)
	for _, want := range []string{"probed profile", "predicted", "observed", "drift", "total", "wrote Chrome trace"} {
		if !strings.Contains(out, want) {
			t.Fatalf("drift report missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace artifact is not valid JSON: %v", err)
	}
	stageSpans := 0
	for _, e := range doc.TraceEvents {
		if strings.HasPrefix(e.Name, "barrier.stage:") && e.Ph == "X" {
			stageSpans++
		}
	}
	// One traced run of dissemination(4) is 2 stages × 4 ranks, preceded by
	// an alignment barrier of the same shape: at least 16 complete spans.
	if stageSpans < 16 {
		t.Fatalf("trace artifact has %d barrier.stage spans, want ≥ 16", stageSpans)
	}
}

// TestCLITraceBarrier drives the trace command.
func TestCLITraceBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the tracebarrier command")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	out := runCmd(t, "./cmd/tracebarrier", "-p", "8", "-alg", "dissemination", "-width", "60")
	for _, want := range []string{"messages", "critical path", "slowest links"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tracebarrier output missing %q:\n%s", want, out)
		}
	}
}
