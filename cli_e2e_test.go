package topobarrier_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd executes one of the repository's commands via the go tool.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives profilecluster → predictbarrier → tunebarrier →
// runbarrier → genbarrier → searchbarrier end to end through their public
// command-line interfaces.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the command suite")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	prof := filepath.Join(dir, "prof.json")
	schedule := filepath.Join(dir, "sched.json")
	genfile := filepath.Join(dir, "barrier.go")

	out := runCmd(t, "./cmd/profilecluster", "-cluster", "quad", "-p", "22", "-o", prof)
	if !strings.Contains(out, "wrote "+prof) {
		t.Fatalf("profilecluster output: %s", out)
	}
	if _, err := os.Stat(prof); err != nil {
		t.Fatal(err)
	}

	out = runCmd(t, "./cmd/predictbarrier", "-profile", prof)
	for _, want := range []string{"linear", "dissemination", "tree", "predicted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("predictbarrier output missing %q:\n%s", want, out)
		}
	}

	out = runCmd(t, "./cmd/tunebarrier", "-profile", prof, "-o", schedule, "-maxdepth", "1")
	if !strings.Contains(out, "root") || !strings.Contains(out, "wrote "+schedule) {
		t.Fatalf("tunebarrier output:\n%s", out)
	}

	out = runCmd(t, "./cmd/runbarrier", "-cluster", "quad", "-p", "22", "-alg", schedule, "-iters", "10")
	if !strings.Contains(out, "µs/barrier") {
		t.Fatalf("runbarrier output:\n%s", out)
	}
	out = runCmd(t, "./cmd/runbarrier", "-cluster", "quad", "-p", "22", "-alg", "mpi", "-iters", "10")
	if !strings.Contains(out, "MPI barrier") {
		t.Fatalf("runbarrier mpi output:\n%s", out)
	}

	runCmd(t, "./cmd/genbarrier", "-schedule", schedule, "-o", genfile, "-pkg", "main", "-func", "B")
	src, err := os.ReadFile(genfile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "func B(c *topobarrier.Comm") {
		t.Fatalf("genbarrier output:\n%s", src)
	}

	out = runCmd(t, "./cmd/searchbarrier", "-profile", prof, "-seed-alg", "tree", "-steps", "300", "-restarts", "1")
	if !strings.Contains(out, "barrier verified: true") {
		t.Fatalf("searchbarrier output:\n%s", out)
	}
}

// TestCLIExperimentsSubset regenerates two cheap figures through the
// experiments command and checks the CSV/text outputs land on disk.
func TestCLIExperimentsSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the experiments command")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	out := runCmd(t, "./cmd/experiments", "-fig", "9,10", "-out", dir)
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "Figure 10") {
		t.Fatalf("experiments output:\n%s", out)
	}
	for _, f := range []string{"figure9.txt", "figure10.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
}

// TestCLIBarrierLib drives the library command: tune (miss), tune (hit),
// check, list.
func TestCLIBarrierLib(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the barrierlib command")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	out := runCmd(t, "./cmd/barrierlib", "tune", "-dir", dir, "-cluster", "quad", "-p", "12")
	if !strings.Contains(out, "tuned now") {
		t.Fatalf("first tune output: %s", out)
	}
	out = runCmd(t, "./cmd/barrierlib", "tune", "-dir", dir, "-cluster", "quad", "-p", "12")
	if !strings.Contains(out, "loaded from library") {
		t.Fatalf("second tune output: %s", out)
	}
	out = runCmd(t, "./cmd/barrierlib", "check", "-dir", dir, "-cluster", "quad", "-p", "12")
	if !strings.Contains(out, "synchronization verified") {
		t.Fatalf("check output: %s", out)
	}
	out = runCmd(t, "./cmd/barrierlib", "list", "-dir", dir)
	if !strings.Contains(out, "P=12") {
		t.Fatalf("list output: %s", out)
	}
}

// TestCLITraceBarrier drives the trace command.
func TestCLITraceBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the tracebarrier command")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	out := runCmd(t, "./cmd/tracebarrier", "-p", "8", "-alg", "dissemination", "-width", "60")
	for _, want := range []string{"messages", "critical path", "slowest links"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tracebarrier output missing %q:\n%s", want, out)
		}
	}
}
