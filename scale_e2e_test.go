package topobarrier_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"topobarrier/internal/sched"
)

// TestTuneSyntheticLargeP drives the full adaptive pipeline — SSS clustering,
// hybrid composition, barriervet, cluster-pruned batched refinement, plan
// compilation — against the noise-free profile of a synthetic 1024-rank
// hierarchical cluster, entirely through the tunebarrier CLI. The budgeted
// tune must finish in seconds and emit a vet-clean schedule that the Eq. 3
// closure verifies as a barrier.
func TestTuneSyntheticLargeP(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs tunebarrier at large P")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "sched.json")

	start := time.Now()
	text := runCmd(t, "./cmd/tunebarrier",
		"-synthetic-p", fmt.Sprint(scaleTestP),
		"-refine", "400", "-refine-batch", "8",
		"-o", out)
	elapsed := time.Since(start)
	t.Logf("P=%d budgeted tune: %s (including go run compile)", scaleTestP, elapsed.Round(time.Millisecond))

	if want := fmt.Sprintf("(P=%d)", scaleTestP); !strings.Contains(text, want) {
		t.Fatalf("tunebarrier output lacks %q:\n%s", want, text[:min(len(text), 800)])
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var s sched.Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("stored schedule: %v", err)
	}
	if s.P != scaleTestP {
		t.Fatalf("stored schedule has P=%d, want %d", s.P, scaleTestP)
	}
	if !s.IsBarrier() {
		t.Fatalf("P=%d tuned schedule fails Eq. 3 closure", scaleTestP)
	}
}

// TestSearchSyntheticLargeP runs the standalone local search at large P with
// cluster-pruned proposals and best-of-batch stepping — the configuration the
// sparse-frontier kernels exist for — and requires a verified barrier out.
func TestSearchSyntheticLargeP(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs searchbarrier at large P")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	text := runCmd(t, "./cmd/searchbarrier",
		"-synthetic-p", fmt.Sprint(scaleTestP),
		"-seed-alg", "dissemination",
		"-steps", "300", "-restarts", "1",
		"-cluster-prune", "-batch", "8", "-rngseed", "7")
	if !strings.Contains(text, "barrier verified: true") {
		t.Fatalf("searchbarrier did not verify the result:\n%s", text)
	}
}
